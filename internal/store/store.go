// Package store is the durable, versioned plan store behind the tuning
// service: every tuned (workload, cluster, space) triple is written to
// disk as one JSON document, atomically (temp file + rename), and the
// whole directory is snapshot-loaded into an in-memory index on server
// start. A fleet operator tuning hundreds of near-repeat workloads gets
// two amortization levers from it:
//
//   - exact hits: a killed-and-restarted server serves previously tuned
//     plans straight from disk, without re-searching;
//   - nearest-neighbor hits: a new workload with no exact record is
//     matched to the closest stored workload of the same model family
//     (closest GPU count, batch, and sequence length), whose plan then
//     warm-starts the search (core.Tuner.Warm).
//
// The index key is the canonical fingerprint — model, platform, GPU
// count, global batch, sequence length, FlashAttention, search space —
// with platform and space lower-cased, so wire-level spelling variants
// collapse to one record. Records are versioned: re-putting a
// fingerprint bumps Version and atomically replaces the document.
package store

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/plan"
)

// Fingerprint names a (workload, cluster, space) triple. It mirrors the
// serving layer's plan-cache identity so the store and the in-memory
// cache agree about which requests are "the same".
type Fingerprint struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	GPUs     int    `json:"gpus"`
	Batch    int    `json:"batch"`
	Seq      int    `json:"seq"`
	Flash    bool   `json:"flash"`
	Space    string `json:"space"`
}

// canonical lower-cases the free-form fields so spelling variants of the
// same triple share one record.
func (f Fingerprint) canonical() Fingerprint {
	f.Platform = strings.ToLower(f.Platform)
	f.Space = strings.ToLower(f.Space)
	return f
}

// Key renders the canonical index key.
func (f Fingerprint) Key() string {
	f = f.canonical()
	return fmt.Sprintf("%s|%s|%d|%d|%d|%t|%s",
		f.Model, f.Platform, f.GPUs, f.Batch, f.Seq, f.Flash, f.Space)
}

// Record is one stored plan with its prediction and provenance.
type Record struct {
	Fingerprint    Fingerprint `json:"fingerprint"`
	Plan           *plan.Plan  `json:"plan"`
	Predicted      float64     `json:"predictedIterTime"`
	PredThroughput float64     `json:"predictedThroughput"`

	// Version counts writes to this fingerprint (1 on first Put); it is
	// store-managed, callers need not set it.
	Version   int       `json:"version"`
	UpdatedAt time.Time `json:"updatedAt"`
}

// Store is a concurrency-safe plan store. With a backing directory every
// Put is written through to disk; with none (InMemory) it degrades to a
// process-local index with identical semantics.
//
// Two locks split the write path from the read path: wmu serializes
// writers end to end — version assignment, the atomic document write
// (temp file + fsync + rename), and the index update — while mu guards
// only the in-memory index. Readers on the tune hot path therefore
// never wait on disk: a Get during a concurrent Put returns the old
// record until the new document is durably on disk and installed.
type Store struct {
	dir string

	// wmu is the writer-serialization lock: held across the disk commit
	// by design, so concurrent Puts cannot interleave temp files and
	// version bumps. Never taken by readers.
	wmu sync.Mutex

	mu   sync.RWMutex
	recs map[string]Record

	// onPut, when set, observes every locally originated write (Put) —
	// the cluster tier hangs its write-through replication here. The
	// context is the writer's (PutCtx), carrying request identity and
	// trace spans into replication; it is deliberately NOT fired by
	// Apply, so replicated records never re-replicate.
	onPut func(context.Context, Record)

	// LoadSkipped counts directory entries that existed but could not be
	// decoded as records at Open time (corrupt or foreign files); they
	// are left untouched on disk and excluded from the index.
	loadSkipped int
}

// InMemory builds a store with no backing directory.
func InMemory() *Store {
	return &Store{recs: map[string]Record{}}
}

// Open loads (creating if needed) a directory-backed store. Corrupt
// documents are skipped, not fatal: one bad file must not take down the
// whole snapshot.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return InMemory(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, recs: map[string]Record{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.loadSkipped++
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil || rec.Plan == nil || rec.Fingerprint.Model == "" {
			s.loadSkipped++
			continue
		}
		rec.Fingerprint = rec.Fingerprint.canonical()
		key := rec.Fingerprint.Key()
		if prev, ok := s.recs[key]; !ok || rec.Version > prev.Version {
			s.recs[key] = rec
		}
	}
	return s, nil
}

// Dir reports the backing directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// LoadSkipped reports how many on-disk documents were unreadable at Open.
func (s *Store) LoadSkipped() int { return s.loadSkipped }

// Len reports the number of indexed plans.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Records snapshots every indexed record, sorted by key — the cluster
// tier's audit surface (e.g. asserting each fingerprint was tuned
// exactly once fleet-wide by checking versions across nodes).
func (s *Store) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.recs[k])
	}
	return out
}

// Get returns the record for an exact fingerprint.
func (s *Store) Get(f Fingerprint) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[f.Key()]
	return rec, ok
}

// GetByKey returns the record for a canonical fingerprint key — the
// cluster tier's record-fetch path, where only the wire key crosses
// nodes.
func (s *Store) GetByKey(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Delete removes a fingerprint's record from the index and, when
// directory-backed, from disk — the rebalancer's release step after a
// record this node no longer replicates has been confirmed on every
// current replica. Unknown fingerprints are a no-op.
func (s *Store) Delete(f Fingerprint) error {
	f = f.canonical()
	key := f.Key()
	//mistlint:ignore lockio wmu is the writer-serialization lock; it exists to order disk commits and never blocks readers
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.RLock()
	_, ok := s.recs[key]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	if s.dir != "" {
		if err := os.Remove(filepath.Join(s.dir, fileName(f))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: deleting %s: %w", key, err)
		}
	}
	s.mu.Lock()
	delete(s.recs, key)
	s.mu.Unlock()
	return nil
}

// SetOnPut installs the write-through hook, called (outside the store
// lock) after every successful Put with the writer's context and the
// record as stored. Install before serving traffic; one hook at a time.
func (s *Store) SetOnPut(fn func(context.Context, Record)) {
	s.mu.Lock()
	s.onPut = fn
	s.mu.Unlock()
}

// Put indexes a record without caller context — hook observers see a
// background context. Prefer PutCtx on request paths so request
// identity and trace spans reach the hook.
func (s *Store) Put(rec Record) (Record, error) {
	return s.PutCtx(context.Background(), rec)
}

// PutCtx indexes (and, when directory-backed, durably writes) a record,
// bumping the fingerprint's version. The caller's Version/UpdatedAt are
// overwritten; the record as stored (version assigned) is returned.
// ctx is not a cancellation point for the write itself (a plan already
// computed is always worth persisting); it only flows to the onPut hook.
func (s *Store) PutCtx(ctx context.Context, rec Record) (Record, error) {
	if rec.Plan == nil {
		return Record{}, fmt.Errorf("store: refusing to store a nil plan for %s", rec.Fingerprint.Key())
	}
	rec.Fingerprint = rec.Fingerprint.canonical()
	key := rec.Fingerprint.Key()

	//mistlint:ignore lockio wmu is the writer-serialization lock; it exists to order disk commits and never blocks readers
	s.wmu.Lock()
	s.mu.RLock()
	rec.Version = s.recs[key].Version + 1
	hook := s.onPut
	s.mu.RUnlock()
	rec.UpdatedAt = time.Now().UTC()
	if s.dir != "" {
		if err := s.writeDoc(key, rec); err != nil {
			s.wmu.Unlock()
			return Record{}, err
		}
	}
	s.mu.Lock()
	s.recs[key] = rec
	s.mu.Unlock()
	s.wmu.Unlock()
	// The hook runs outside both locks: replication does network work
	// and must not serialize against concurrent reads and writes.
	if hook != nil {
		hook(ctx, rec)
	}
	return rec, nil
}

// Apply installs a record replicated from a peer, preserving the
// incoming Version: the write happens only when the incoming version is
// newer than the local one (false, nil otherwise), and the onPut hook
// does not fire — replica writes never cascade.
func (s *Store) Apply(rec Record) (bool, error) {
	if rec.Plan == nil {
		return false, fmt.Errorf("store: refusing to apply a nil plan for %s", rec.Fingerprint.Key())
	}
	if rec.Version < 1 {
		return false, fmt.Errorf("store: refusing to apply unversioned record for %s", rec.Fingerprint.Key())
	}
	rec.Fingerprint = rec.Fingerprint.canonical()
	key := rec.Fingerprint.Key()

	//mistlint:ignore lockio wmu is the writer-serialization lock; it exists to order disk commits and never blocks readers
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.RLock()
	cur, ok := s.recs[key]
	s.mu.RUnlock()
	if ok && cur.Version >= rec.Version {
		return false, nil
	}
	if s.dir != "" {
		if err := s.writeDoc(key, rec); err != nil {
			return false, err
		}
	}
	s.mu.Lock()
	s.recs[key] = rec
	s.mu.Unlock()
	return true, nil
}

// writeDoc persists one record atomically: marshal to a temp file in
// the store directory, fsync, then rename over the final name. A crash
// mid-write leaves either the old document or a stray temp file (ignored
// at load), never a torn record. Callers hold wmu (writers are
// serialized); the index lock mu is deliberately NOT held here.
func (s *Store) writeDoc(key string, rec Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshaling %s: %w", key, err)
	}
	final := filepath.Join(s.dir, fileName(rec.Fingerprint))
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: syncing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing %s: %w", key, err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: committing %s: %w", key, err)
	}
	return nil
}

// fileName derives a stable, filesystem-safe document name: a readable
// model prefix plus the FNV-64a of the canonical key (two fingerprints
// never share a name unless they share a key).
func fileName(f Fingerprint) string {
	h := fnv.New64a()
	h.Write([]byte(f.Key()))
	var prefix strings.Builder
	for _, r := range f.Model {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			prefix.WriteRune(r)
		default:
			prefix.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s-%016x.json", prefix.String(), h.Sum64())
}

// Nearest finds the stored workload closest to f among records that can
// safely seed its search: same platform, search space, and
// FlashAttention setting, and the same model family (exact model name
// when the model is outside the catalog). Distance is measured in
// doublings of GPU count, batch, and sequence length, with a fixed
// penalty for a different model size within the family; GPU-count
// distance is weighted highest because it reshapes the plan the most.
// The exact fingerprint itself is excluded — callers resolve exact hits
// through Get first.
func (s *Store) Nearest(f Fingerprint) (Record, bool) {
	f = f.canonical()
	key := f.Key()
	fam, famKnown := familyOf(f.Model)

	s.mu.RLock()
	defer s.mu.RUnlock()
	var (
		best     Record
		bestDist float64
		bestKey  string
		found    bool
	)
	for k, rec := range s.recs {
		g := rec.Fingerprint
		if k == key || g.Platform != f.Platform || g.Space != f.Space || g.Flash != f.Flash {
			continue
		}
		if g.Model != f.Model {
			gfam, ok := familyOf(g.Model)
			if !famKnown || !ok || gfam != fam {
				continue
			}
		}
		d := dist(f, g)
		if !found || d < bestDist || (d == bestDist && k < bestKey) {
			best, bestDist, bestKey, found = rec, d, k, true
		}
	}
	return best, found
}

func dist(a, b Fingerprint) float64 {
	d := 0.0
	if a.Model != b.Model {
		d += 4
	}
	d += 2 * absLog2(float64(a.GPUs)/float64(b.GPUs))
	d += absLog2(float64(a.Batch) / float64(b.Batch))
	d += 0.5 * absLog2(float64(a.Seq)/float64(b.Seq))
	return d
}

func absLog2(r float64) float64 {
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		return math.Inf(1)
	}
	return math.Abs(math.Log2(r))
}

// familyOf resolves a model name to its catalog family.
func familyOf(name string) (model.Family, bool) {
	cfg, err := model.ByName(name)
	if err != nil {
		return 0, false
	}
	return cfg.Family, true
}
