package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The write-through hook fires once per Put, outside the lock, with the
// record as stored — and never for Apply (replica writes must not
// cascade).
func TestOnPutHookFiresForPutNotApply(t *testing.T) {
	s := InMemory()
	var seen []Record
	s.SetOnPut(func(_ context.Context, rec Record) {
		// Re-entrancy: the hook must be able to read the store (the
		// cluster tier computes replica targets while holding nothing).
		_ = s.Len()
		seen = append(seen, rec)
	})
	f := fp("gpt3-2.7b", 4, 32)
	if _, err := s.Put(Record{Fingerprint: f, Plan: tinyPlan(1)}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Version != 1 {
		t.Fatalf("hook saw %+v, want one v1 record", seen)
	}
	applied, err := s.Apply(Record{Fingerprint: fp("llama-7b", 4, 32), Plan: tinyPlan(1), Version: 3})
	if err != nil || !applied {
		t.Fatalf("apply: %v applied=%v", err, applied)
	}
	if len(seen) != 1 {
		t.Fatalf("hook fired for Apply: %+v", seen)
	}
}

// Apply preserves the incoming version and only moves forward: stale
// and equal versions are no-ops, newer ones replace.
func TestApplyVersionGate(t *testing.T) {
	s := InMemory()
	f := fp("gpt3-2.7b", 4, 32)
	if applied, err := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(1), Version: 2}); err != nil || !applied {
		t.Fatalf("first apply: %v applied=%v", err, applied)
	}
	rec, ok := s.Get(f)
	if !ok || rec.Version != 2 {
		t.Fatalf("stored %+v, want version 2 preserved", rec)
	}
	if applied, _ := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(2), Version: 2}); applied {
		t.Error("equal version re-applied")
	}
	if applied, _ := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(2), Version: 1}); applied {
		t.Error("stale version applied")
	}
	if applied, _ := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(3), Version: 5}); !applied {
		t.Error("newer version rejected")
	}
	rec, _ = s.Get(f)
	if rec.Version != 5 || len(rec.Plan.Stages) != 3 {
		t.Fatalf("after newer apply: %+v", rec)
	}
	// A local Put on top of a replicated record still bumps past it.
	put, err := s.Put(Record{Fingerprint: f, Plan: tinyPlan(1)})
	if err != nil || put.Version != 6 {
		t.Fatalf("put after apply: %+v err %v", put, err)
	}
	if _, err := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(1)}); err == nil {
		t.Error("unversioned apply accepted")
	}
	if _, err := s.Apply(Record{Fingerprint: f, Version: 9}); err == nil {
		t.Error("nil-plan apply accepted")
	}
}

// Directory-backed Apply is as durable as Put: the replicated record
// survives a reopen.
func TestApplyPersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fp("gpt3-2.7b", 8, 64)
	if applied, err := s.Apply(Record{Fingerprint: f, Plan: tinyPlan(2), Version: 4}); err != nil || !applied {
		t.Fatalf("apply: %v applied=%v", err, applied)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var docs int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			docs++
			if _, err := os.Stat(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if docs != 1 {
		t.Fatalf("%d documents on disk, want 1", docs)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := s2.Get(f)
	if !ok || rec.Version != 4 {
		t.Fatalf("reopened record %+v, want version 4", rec)
	}
}
