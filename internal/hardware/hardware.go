// Package hardware models the GPU clusters Mist is evaluated on: per-GPU
// compute and memory characteristics, intra-node (PCIe / NVLink) and
// inter-node (Ethernet / InfiniBand) links, and analytic cost models for
// the collectives used by distributed training (ring all-reduce,
// all-gather, reduce-scatter, point-to-point).
//
// The paper runs on GCP machines with 8x NVIDIA L4 (24 GB, PCIe Gen3 x16,
// 100 Gbps network) and AWS p4d machines with 8x NVIDIA A100-40GB (NVLink,
// PCIe Gen4 x16, 400 Gbps network); see Table 3. Those two platforms are
// encoded here as constructors. Since this reproduction has no physical
// GPUs, these models are the ground truth the rest of the system is
// calibrated against (see DESIGN.md, substitution table).
package hardware

import (
	"fmt"
	"math"
	"strings"
)

// GPU describes a single accelerator.
type GPU struct {
	Name string

	// MemoryBytes is the usable HBM/GDDR capacity. A fraction is reserved
	// for framework overhead by the memory planner, not here.
	MemoryBytes int64

	// PeakFP16FLOPS is the peak half-precision tensor throughput in FLOP/s.
	PeakFP16FLOPS float64

	// MemBandwidth is the device memory bandwidth in bytes/s; bandwidth-
	// bound kernels (norms, elementwise, softmax) are costed against it.
	MemBandwidth float64

	// KernelLaunchOverhead is the fixed per-kernel cost in seconds. It
	// dominates tiny shapes and is what makes small microbatches
	// inefficient (the "kernel efficiency" effect in the paper §1).
	KernelLaunchOverhead float64

	// MatmulEfficiency is the fraction of peak FLOPs achieved by large,
	// well-shaped GEMMs. Small GEMMs are degraded further by the opdb
	// efficiency curve.
	MatmulEfficiency float64
}

// Link is a shared communication channel with a simple alpha-beta cost
// model: transferring n bytes costs Latency + n/Bandwidth.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds per message
}

// TimeFor returns the alpha-beta transfer time of n bytes.
func (l Link) TimeFor(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + bytes/l.Bandwidth
}

// Cluster is an N-node x M-GPU-per-node device mesh with homogeneous GPUs.
type Cluster struct {
	GPU         GPU
	Nodes       int
	GPUsPerNode int

	// IntraNode is the GPU<->GPU link inside one node (NVLink or PCIe
	// peer-to-peer). InterNode is the per-GPU share of the network NIC.
	IntraNode Link
	InterNode Link

	// HostLink is the CPU<->GPU PCIe link used by offloading (D2H/H2D).
	// D2H and H2D are independent DMA directions and can proceed
	// concurrently at full duplex.
	HostLink Link
}

// TotalGPUs returns the device count of the mesh.
func (c *Cluster) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// Validate checks mesh invariants.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("hardware: invalid mesh %dx%d", c.Nodes, c.GPUsPerNode)
	}
	if c.GPU.MemoryBytes <= 0 || c.GPU.PeakFP16FLOPS <= 0 || c.GPU.MemBandwidth <= 0 {
		return fmt.Errorf("hardware: GPU %q has non-positive capability", c.GPU.Name)
	}
	if c.IntraNode.Bandwidth <= 0 || c.InterNode.Bandwidth <= 0 || c.HostLink.Bandwidth <= 0 {
		return fmt.Errorf("hardware: cluster %q has non-positive link bandwidth", c.GPU.Name)
	}
	return nil
}

// groupLink returns the effective link for a collective over group devices
// that are packed onto nodes contiguously: if the group fits within one
// node it uses the intra-node link, otherwise the ring crosses node
// boundaries and the slowest hop (inter-node) bounds throughput.
func (c *Cluster) groupLink(groupSize int) Link {
	if groupSize <= c.GPUsPerNode {
		return c.IntraNode
	}
	return c.InterNode
}

// AllReduceTime models a ring all-reduce of bytes over a group of n
// devices: 2(n-1)/n * bytes over the bottleneck link, plus 2(n-1) hop
// latencies.
func (c *Cluster) AllReduceTime(bytes float64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	l := c.groupLink(n)
	steps := float64(2 * (n - 1))
	return steps*l.Latency + 2*float64(n-1)/float64(n)*bytes/l.Bandwidth
}

// AllGatherTime models a ring all-gather where each device ends with bytes
// total: (n-1)/n * bytes over the bottleneck link.
func (c *Cluster) AllGatherTime(bytes float64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	l := c.groupLink(n)
	steps := float64(n - 1)
	return steps*l.Latency + float64(n-1)/float64(n)*bytes/l.Bandwidth
}

// ReduceScatterTime mirrors AllGatherTime (same ring traffic pattern).
func (c *Cluster) ReduceScatterTime(bytes float64, n int) float64 {
	return c.AllGatherTime(bytes, n)
}

// AllToAllTime models a personalized all-to-all over n devices where
// each device holds bytes total and keeps 1/n locally (the MoE dispatch
// and combine exchanges of expert parallelism).
func (c *Cluster) AllToAllTime(bytes float64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	l := c.groupLink(n)
	return float64(n-1)*l.Latency + float64(n-1)/float64(n)*bytes/l.Bandwidth
}

// P2PTime models a point-to-point activation transfer between adjacent
// pipeline stages. Whether the hop crosses nodes depends on the stage
// placement; crossNode selects the link.
func (c *Cluster) P2PTime(bytes float64, crossNode bool) float64 {
	l := c.IntraNode
	if crossNode {
		l = c.InterNode
	}
	return l.TimeFor(bytes)
}

// D2HTime and H2DTime model offloading transfers over the host PCIe link.
func (c *Cluster) D2HTime(bytes float64) float64 { return c.HostLink.TimeFor(bytes) }

// H2DTime models host-to-device transfers; symmetric with D2HTime.
func (c *Cluster) H2DTime(bytes float64) float64 { return c.HostLink.TimeFor(bytes) }

const (
	gb  = 1 << 30
	gbs = 1e9 // 1 GB/s in bytes/s

	// usableMemoryFraction reserves space for CUDA context, NCCL buffers,
	// fragmentation, and framework workspace.
	usableMemoryFraction = 0.92
)

// MemoryBudget returns the per-GPU byte budget the planner may fill.
func (c *Cluster) MemoryBudget() float64 {
	return float64(c.GPU.MemoryBytes) * usableMemoryFraction
}

// L4 returns an NVIDIA L4 GPU model: 24 GB GDDR6, 121 TFLOPS dense FP16,
// 300 GB/s memory bandwidth, PCIe Gen3 x16 host link (the GCP G2 platform
// in Table 3 exposes Gen3 x16 to each GPU).
func L4() GPU {
	return GPU{
		Name:                 "NVIDIA-L4",
		MemoryBytes:          24 * gb,
		PeakFP16FLOPS:        121e12,
		MemBandwidth:         300 * gbs,
		KernelLaunchOverhead: 6e-6,
		MatmulEfficiency:     0.62,
	}
}

// A100 returns an NVIDIA A100-SXM4-40GB model: 312 TFLOPS dense FP16,
// 1555 GB/s HBM2, NVLink 3 intra-node.
func A100() GPU {
	return GPU{
		Name:                 "NVIDIA-A100-40GB",
		MemoryBytes:          40 * gb,
		PeakFP16FLOPS:        312e12,
		MemBandwidth:         1555 * gbs,
		KernelLaunchOverhead: 4e-6,
		MatmulEfficiency:     0.70,
	}
}

// L4Cluster builds the paper's PCIe platform: nodes of 8x L4, PCIe Gen3 x16
// peer traffic (~12 GB/s effective, shared), 100 Gbps network NIC shared by
// the node's GPUs.
func L4Cluster(nodes, gpusPerNode int) *Cluster {
	return &Cluster{
		GPU:         L4(),
		Nodes:       nodes,
		GPUsPerNode: gpusPerNode,
		IntraNode:   Link{Name: "pcie3x16-p2p", Bandwidth: 12 * gbs, Latency: 10e-6},
		InterNode:   Link{Name: "eth-100gbps", Bandwidth: 100e9 / 8 / 8, Latency: 25e-6},
		HostLink:    Link{Name: "pcie3x16-host", Bandwidth: 12 * gbs, Latency: 10e-6},
	}
}

// A100Cluster builds the paper's NVLink platform: nodes of 8x A100 with
// NVLink 3 (600 GB/s aggregate; ~230 GB/s effective per ring direction),
// PCIe Gen4 host link, 400 Gbps EFA network.
func A100Cluster(nodes, gpusPerNode int) *Cluster {
	return &Cluster{
		GPU:         A100(),
		Nodes:       nodes,
		GPUsPerNode: gpusPerNode,
		IntraNode:   Link{Name: "nvlink3", Bandwidth: 230 * gbs, Latency: 3e-6},
		InterNode:   Link{Name: "efa-400gbps", Bandwidth: 400e9 / 8 / 8, Latency: 15e-6},
		HostLink:    Link{Name: "pcie4x16-host", Bandwidth: 24 * gbs, Latency: 8e-6},
	}
}

// MeshForGPUs follows the paper's scaling convention (2, 4, 8 GPUs on one
// node; 16 and 32 GPUs across 2 and 4 nodes of 8).
func MeshForGPUs(total int) (nodes, perNode int, err error) {
	switch {
	case total <= 0:
		return 0, 0, fmt.Errorf("hardware: non-positive GPU count %d", total)
	case total <= 8:
		return 1, total, nil
	case total%8 == 0:
		return total / 8, 8, nil
	default:
		return 0, 0, fmt.Errorf("hardware: GPU count %d not a multiple of 8", total)
	}
}

// BisectionFactor quantifies (for reporting) how much slower the mesh's
// cross-node fabric is compared to its intra-node fabric.
func (c *Cluster) BisectionFactor() float64 {
	return c.IntraNode.Bandwidth / math.Max(c.InterNode.Bandwidth, 1)
}

// HasNVLink reports whether the intra-node fabric is NVLink-class; used
// to pick the matching contention model for interference calibration.
func (c *Cluster) HasNVLink() bool {
	return strings.HasPrefix(c.IntraNode.Name, "nvlink")
}
