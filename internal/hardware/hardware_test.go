package hardware

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkTimeFor(t *testing.T) {
	l := Link{Name: "test", Bandwidth: 1e9, Latency: 1e-6}
	if got := l.TimeFor(0); got != 0 {
		t.Errorf("zero bytes: got %v, want 0", got)
	}
	want := 1e-6 + 1.0 // 1e9 bytes at 1e9 B/s
	if got := l.TimeFor(1e9); math.Abs(got-want) > 1e-12 {
		t.Errorf("1 GB transfer: got %v, want %v", got, want)
	}
}

func TestClusterValidate(t *testing.T) {
	c := L4Cluster(1, 8)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cluster rejected: %v", err)
	}
	bad := *c
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-node cluster accepted")
	}
	bad = *c
	bad.GPU.MemoryBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-memory GPU accepted")
	}
	bad = *c
	bad.HostLink.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-bandwidth host link accepted")
	}
}

func TestAllReduceScaling(t *testing.T) {
	c := A100Cluster(1, 8)
	bytes := 1e9
	// All-reduce over 1 device is free.
	if got := c.AllReduceTime(bytes, 1); got != 0 {
		t.Errorf("n=1: got %v, want 0", got)
	}
	// Traffic factor 2(n-1)/n grows with n: t(8) > t(2).
	t2 := c.AllReduceTime(bytes, 2)
	t8 := c.AllReduceTime(bytes, 8)
	if t8 <= t2 {
		t.Errorf("all-reduce: t(8)=%v should exceed t(2)=%v", t8, t2)
	}
	// But is bounded by 2x the raw transfer time plus latencies.
	raw := bytes / c.IntraNode.Bandwidth
	if t8 >= 2*raw+16*c.IntraNode.Latency+1e-12 {
		t.Errorf("all-reduce t(8)=%v exceeds 2x raw bound %v", t8, 2*raw)
	}
}

func TestAllGatherVsAllReduce(t *testing.T) {
	c := L4Cluster(1, 4)
	bytes := 64e6
	ag := c.AllGatherTime(bytes, 4)
	ar := c.AllReduceTime(bytes, 4)
	// All-reduce moves twice the traffic of all-gather.
	if math.Abs(ar-2*ag) > 1e-9 {
		t.Errorf("all-reduce %v should be 2x all-gather %v", ar, ag)
	}
	if rs := c.ReduceScatterTime(bytes, 4); rs != ag {
		t.Errorf("reduce-scatter %v should equal all-gather %v", rs, ag)
	}
}

func TestCrossNodeCollectiveSlower(t *testing.T) {
	c := A100Cluster(4, 8)
	bytes := 256e6
	intra := c.AllReduceTime(bytes, 8)  // fits in one node
	inter := c.AllReduceTime(bytes, 16) // spans two nodes
	if inter <= intra {
		t.Errorf("cross-node all-reduce %v should exceed intra-node %v", inter, intra)
	}
}

func TestP2PLinkSelection(t *testing.T) {
	c := A100Cluster(2, 8)
	bytes := 16e6
	same := c.P2PTime(bytes, false)
	cross := c.P2PTime(bytes, true)
	if cross <= same {
		t.Errorf("cross-node p2p %v should exceed intra-node %v", cross, same)
	}
}

func TestPlatformAsymmetry(t *testing.T) {
	l4 := L4Cluster(1, 8)
	a100 := A100Cluster(1, 8)
	// The PCIe platform must have a much weaker intra-node fabric: this
	// asymmetry is what gives Mist larger wins on L4 (paper §6.2).
	if l4.IntraNode.Bandwidth*5 > a100.IntraNode.Bandwidth {
		t.Errorf("expected A100 NVLink >> L4 PCIe: %v vs %v",
			a100.IntraNode.Bandwidth, l4.IntraNode.Bandwidth)
	}
	if l4.GPU.MemoryBytes >= a100.GPU.MemoryBytes {
		t.Error("L4 should have less memory than A100")
	}
	if l4.MemoryBudget() >= float64(l4.GPU.MemoryBytes) {
		t.Error("memory budget must reserve framework overhead")
	}
}

func TestMeshForGPUs(t *testing.T) {
	cases := []struct {
		total, nodes, perNode int
		wantErr               bool
	}{
		{2, 1, 2, false},
		{4, 1, 4, false},
		{8, 1, 8, false},
		{16, 2, 8, false},
		{32, 4, 8, false},
		{0, 0, 0, true},
		{12, 0, 0, true},
	}
	for _, c := range cases {
		n, m, err := MeshForGPUs(c.total)
		if c.wantErr {
			if err == nil {
				t.Errorf("MeshForGPUs(%d): expected error", c.total)
			}
			continue
		}
		if err != nil || n != c.nodes || m != c.perNode {
			t.Errorf("MeshForGPUs(%d) = (%d,%d,%v), want (%d,%d)", c.total, n, m, err, c.nodes, c.perNode)
		}
	}
}

// Property: collective times are monotone in bytes.
func TestPropertyCollectiveMonotoneInBytes(t *testing.T) {
	c := L4Cluster(2, 8)
	f := func(a, b uint32, n8 uint8) bool {
		n := int(n8%16) + 2
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return c.AllReduceTime(x, n) <= c.AllReduceTime(y, n)+1e-12 &&
			c.AllGatherTime(x, n) <= c.AllGatherTime(y, n)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: collective times are non-negative.
func TestPropertyCollectiveNonNegative(t *testing.T) {
	c := A100Cluster(4, 8)
	f := func(b uint32, n8 uint8) bool {
		n := int(n8 % 40)
		bytes := float64(b)
		return c.AllReduceTime(bytes, n) >= 0 &&
			c.AllGatherTime(bytes, n) >= 0 &&
			c.ReduceScatterTime(bytes, n) >= 0 &&
			c.D2HTime(bytes) >= 0 && c.H2DTime(bytes) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectionFactor(t *testing.T) {
	a100 := A100Cluster(4, 8)
	if bf := a100.BisectionFactor(); bf <= 1 {
		t.Errorf("A100 bisection factor %v should exceed 1 (NVLink >> network)", bf)
	}
}
