// Package cluster is the sharded serving tier: N mistserve nodes form
// a static-membership ring, a consistent-hash ring (virtual nodes) over
// the canonical plan fingerprints assigns each fingerprint an owner
// plus R−1 replicas, non-owners transparently forward requests to the
// owner, and active health checking (ok/suspect/down) routes around
// dead peers. Together with the serving layer's plan-cache coalescing
// and the plan store's write-through replication, the ring gives the
// fleet cache locality: each unique workload fingerprint is tuned
// exactly once cluster-wide, and any replica can serve an owner's
// fingerprints from its own store after a failover.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the per-member virtual-node count: enough points
// that member shares of the hash space concentrate near 1/N (stddev
// ~1/sqrt(vnodes) of the mean) without making ring construction or the
// replica walk expensive.
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a member.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing; lookups are safe for concurrent use.
type Ring struct {
	vnodes int
	ids    []string // sorted, deduplicated member ids
	points []ringPoint
}

// hash64 is the ring's point and key hash: FNV-64a (cheap, stateless,
// and stable across processes — every node computes the same ring)
// finished with a splitmix64 avalanche. The finalizer matters: raw FNV
// of near-identical short strings ("n1#0", "n1#1", ...) leaves the
// high bits correlated, which skews ring arcs far beyond the
// ~1/sqrt(vnodes) balance the vnode count is supposed to buy.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring with vnodes virtual nodes per member (values
// < 1 use DefaultVNodes). Member ids are deduplicated; at least one is
// required.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty member id")
		}
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes: vnodes,
		ids:    uniq,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for _, id := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(id + "#" + strconv.Itoa(v)),
				id:   id,
			})
		}
	}
	// Ties broken by id so the ring order is deterministic regardless of
	// member insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Members returns the ring's member ids, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// VNodes reports the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning a key: the first virtual node at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct members for a key, owner first,
// then successors walking the ring clockwise — the standard
// consistent-hashing replica set, so a member join/leave relocates only
// the keys whose arc it gained or lost.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(start+scanned)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// OwnershipShare reports the fraction of the hash space owned by each
// member (arc lengths of its virtual nodes); shares sum to 1. The
// /cluster topology endpoint exposes it so an operator can see balance
// without sampling keys.
func (r *Ring) OwnershipShare() map[string]float64 {
	out := make(map[string]float64, len(r.ids))
	if len(r.points) == 0 {
		return out
	}
	const space = float64(1<<63) * 2 // 2^64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		// Arc from the previous point (exclusive) to p (inclusive),
		// wrapping at the top of the hash space.
		arc := p.hash - prev // uint64 arithmetic wraps correctly
		out[p.id] += float64(arc) / space
		prev = p.hash
	}
	return out
}
