package cluster

// Warm-standby bookkeeping. A standby is a fully booted node (process
// up, store attached, listener serving /cluster/view) that is NOT part
// of the membership view: it holds no ring share and receives no
// traffic until an operator — or the pilot controller — proposes it
// into the ring. Availability is derived from the epoch-versioned
// membership view rather than tracked separately, so it is correct
// across every transition without its own state machine: a standby that
// appears in the current view is in use; one that was drained back out
// (any later epoch without it) is available again.

// SetStandbys configures the warm-standby pool. The slice is copied.
// Entries whose ID collides with a present member are kept — they are
// simply not available until that member drains.
func (c *Cluster) SetStandbys(pool []Member) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	c.standbys = append([]Member(nil), pool...)
}

// Standbys returns the configured pool (joined or not), in the
// configured order.
func (c *Cluster) Standbys() []Member {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return append([]Member(nil), c.standbys...)
}

// AvailableStandbys returns the pool members absent from the current
// membership view, in the configured order — the nodes a scale-up may
// propose-join next.
func (c *Cluster) AvailableStandbys() []Member {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	var out []Member
	for _, m := range c.standbys {
		if _, present := c.members[m.ID]; !present {
			out = append(out, m)
		}
	}
	return out
}

// IsStandby reports whether id belongs to the configured standby pool
// (whether or not it is currently joined). Members for which this is
// true are borrowed capacity: scale-down returns them to the pool
// before ever touching the static fleet.
func (c *Cluster) IsStandby(id string) bool {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	for _, m := range c.standbys {
		if m.ID == id {
			return true
		}
	}
	return false
}
