package cluster

import (
	"sync"
)

// Event types recorded on the cluster timeline. The serving layer adds
// its rebalance pass events under the Rebalance* types, SLO alert
// transitions under the SLO* types, and autoscaling controller
// decisions under the Pilot* types; everything else is emitted by this
// package.
const (
	EventEpochAdopted     = "epoch-adopted"
	EventMemberOk         = "member-ok"
	EventMemberSuspect    = "member-suspect"
	EventMemberDown       = "member-down"
	EventRebalancePull    = "rebalance-pull"
	EventRebalancePush    = "rebalance-push"
	EventRebalanceHandoff = "rebalance-handoff"
	EventSLOWarning       = "slo-warning"
	EventSLOPage          = "slo-page"
	EventSLOResolved      = "slo-resolved"
	EventPilotScaleUp     = "pilot-scale-up"
	EventPilotDrain       = "pilot-drain"
	EventPilotVeto        = "pilot-veto"
)

// Event is one entry on a node's cluster timeline: what this node
// observed, when, about whom. Seq is a per-node monotone sequence
// number so a poller can resume with ?since=<last seq> and never
// miss or re-read an entry that is still retained.
type Event struct {
	Seq        int64  `json:"seq"`
	TimeUnixNs int64  `json:"timeUnixNs"`
	Type       string `json:"type"`
	Node       string `json:"node"`
	Member     string `json:"member,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// EventLog is a bounded ring of cluster events. Timestamps come from
// the injected protocol Clock, so the log is nodeterm-clean and a
// simulated cluster produces a fully deterministic timeline.
type EventLog struct {
	node  string
	clock Clock

	mu   sync.Mutex
	ring []Event
	next int
	size int
	seq  int64
}

// NewEventLog builds a log retaining up to capacity events (default
// 512) for one node, stamped by clk (default SystemClock).
func NewEventLog(node string, capacity int, clk Clock) *EventLog {
	if capacity <= 0 {
		capacity = 512
	}
	if clk == nil {
		clk = SystemClock
	}
	return &EventLog{node: node, clock: clk, ring: make([]Event, capacity)}
}

// Append records one event. Safe for concurrent use; cheap enough for
// health-transition and rebalance paths (no I/O, one short lock).
func (l *EventLog) Append(typ, member string, epoch int64, detail string) {
	if l == nil {
		return
	}
	now := l.clock.Now().UnixNano()
	l.mu.Lock()
	l.seq++
	l.ring[l.next] = Event{
		Seq:        l.seq,
		TimeUnixNs: now,
		Type:       typ,
		Node:       l.node,
		Member:     member,
		Epoch:      epoch,
		Detail:     detail,
	}
	l.next = (l.next + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	l.mu.Unlock()
}

// Events returns retained events with Seq > since, oldest first. A
// caller that fell further behind than the ring retains simply gets
// the oldest retained entries (the gap is visible in the Seq numbers).
func (l *EventLog) Events(since int64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.size)
	for i := 0; i < l.size; i++ {
		ev := l.ring[(l.next-l.size+i+len(l.ring))%len(l.ring)]
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}
