package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeDoer routes requests by host to canned handlers; hosts marked
// dead answer with a transport error.
type fakeDoer struct {
	mu       sync.Mutex
	dead     map[string]bool
	statuses map[string]int // by host; default 200
	seen     []string       // "METHOD host path" log
}

func newFakeDoer() *fakeDoer {
	return &fakeDoer{dead: map[string]bool{}, statuses: map[string]int{}}
}

func (f *fakeDoer) Do(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.seen = append(f.seen, req.Method+" "+req.URL.Host+" "+req.URL.Path)
	dead := f.dead[req.URL.Host]
	status := f.statuses[req.URL.Host]
	f.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("fake: %s down", req.URL.Host)
	}
	if status == 0 {
		status = http.StatusOK
	}
	rec := httptest.NewRecorder()
	rec.WriteHeader(status)
	return rec.Result(), nil
}

func testMembers() []Member {
	return []Member{
		{ID: "n1", Addr: "http://n1"},
		{ID: "n2", Addr: "http://n2"},
		{ID: "n3", Addr: "http://n3"},
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Self: "n1"},                         // no members
		{Self: "nX", Members: testMembers()}, // self not a member
		{Self: "n1", Members: append(testMembers(), Member{})}, // empty id
		{Self: "n1", Members: []Member{{ID: "n1"}}},            // no addr
		{Self: "n1", Members: append(testMembers(), Member{ID: "n1", Addr: "http://dup"})},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cl, err := New(Config{Self: "n1", Members: testMembers(), Replicas: 99})
	if err != nil {
		t.Fatal(err)
	}
	if cl.ReplicationFactor() != 3 {
		t.Errorf("replication factor %d, want capped at member count 3", cl.ReplicationFactor())
	}
}

// Health transitions: ok -> suspect on the first failure, -> down at
// the threshold, back to ok on any success; self is always ok.
func TestCheckerTransitions(t *testing.T) {
	c := NewChecker("n1", testMembers(), newFakeDoer(), time.Second, 3)
	if got := c.Status("n2"); got != Ok {
		t.Fatalf("initial status %v", got)
	}
	c.ReportFailure("n2")
	if got := c.Status("n2"); got != Suspect {
		t.Fatalf("after 1 failure: %v", got)
	}
	c.ReportFailure("n2")
	if got := c.Status("n2"); got != Suspect {
		t.Fatalf("after 2 failures: %v", got)
	}
	c.ReportFailure("n2")
	if got := c.Status("n2"); got != Down {
		t.Fatalf("after 3 failures: %v", got)
	}
	c.ReportFailure("n2") // saturates, no overflow
	c.ReportSuccess("n2")
	if got := c.Status("n2"); got != Ok {
		t.Fatalf("after recovery: %v", got)
	}
	c.ReportFailure("n1") // self: ignored
	if got := c.Status("n1"); got != Ok {
		t.Fatalf("self status %v", got)
	}
}

// Active probing drives the same transitions from /healthz outcomes.
func TestCheckerProbeOnce(t *testing.T) {
	doer := newFakeDoer()
	c := NewChecker("n1", testMembers(), doer, time.Second, 2)
	doer.mu.Lock()
	doer.dead["n3"] = true
	doer.mu.Unlock()

	c.ProbeOnce(context.Background())
	if got := c.Status("n2"); got != Ok {
		t.Errorf("healthy peer probed to %v", got)
	}
	if got := c.Status("n3"); got != Suspect {
		t.Errorf("dead peer after 1 probe: %v", got)
	}
	c.ProbeOnce(context.Background())
	if got := c.Status("n3"); got != Down {
		t.Errorf("dead peer after 2 probes: %v", got)
	}
	// Peer recovers.
	doer.mu.Lock()
	doer.dead["n3"] = false
	doer.mu.Unlock()
	c.ProbeOnce(context.Background())
	if got := c.Status("n3"); got != Ok {
		t.Errorf("recovered peer: %v", got)
	}
}

// Route drops Down members and keeps owner-first order among the live.
func TestRouteSkipsDownPeers(t *testing.T) {
	cl, err := New(Config{Self: "n1", Members: testMembers(), Replicas: 2, Client: newFakeDoer()})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by a peer (not n1).
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if cl.Owner(key) != "n1" {
			break
		}
	}
	owner := cl.Owner(key)
	route := cl.Route(key)
	if len(route) != 2 || route[0].ID != owner {
		t.Fatalf("route %v, want owner %s first", route, owner)
	}
	// Kill the owner: it must vanish from the route.
	for i := 0; i < 3; i++ {
		cl.Checker().ReportFailure(owner)
	}
	route = cl.Route(key)
	for _, m := range route {
		if m.ID == owner {
			t.Fatalf("down owner %s still routed: %v", owner, route)
		}
	}
	if len(route) != 1 {
		t.Fatalf("route %v, want the single surviving replica", route)
	}
}

// A suspect owner is still routed, but after healthy replicas.
func TestRouteDeprioritizesSuspects(t *testing.T) {
	cl, err := New(Config{Self: "n1", Members: testMembers(), Replicas: 3, Client: newFakeDoer()})
	if err != nil {
		t.Fatal(err)
	}
	key := "some-fingerprint"
	owner := cl.Owner(key)
	cl.Checker().ReportFailure(owner) // one failure: suspect
	route := cl.Route(key)
	if len(route) != 3 {
		t.Fatalf("route %v, want all three members", route)
	}
	if route[len(route)-1].ID != owner {
		t.Errorf("suspect owner %s not demoted to last: %v", owner, route)
	}
}

// Forward outcomes feed the checker: transport errors and 5xx count as
// failures, success resets.
func TestForwardFeedsHealth(t *testing.T) {
	doer := newFakeDoer()
	cl, err := New(Config{Self: "n1", Members: testMembers(), Client: doer, DownAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Member("n2")
	doer.mu.Lock()
	doer.dead["n2"] = true
	doer.mu.Unlock()
	if _, err := cl.Forward(context.Background(), m, http.MethodGet, "/stats", "rid-1", "", nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	if got := cl.Health("n2"); got != Suspect {
		t.Errorf("after failed forward: %v", got)
	}
	doer.mu.Lock()
	doer.dead["n2"] = false
	doer.statuses["n2"] = http.StatusInternalServerError
	doer.mu.Unlock()
	resp, err := cl.Forward(context.Background(), m, http.MethodGet, "/stats", "rid-2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := cl.Health("n2"); got != Down {
		t.Errorf("after 5xx forward: %v", got)
	}
	doer.mu.Lock()
	doer.statuses["n2"] = 0
	doer.mu.Unlock()
	resp, err = cl.Forward(context.Background(), m, http.MethodGet, "/stats", "rid-3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := cl.Health("n2"); got != Ok {
		t.Errorf("after recovery: %v", got)
	}
}

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("n1=http://a:1, n2 = http://b:2/ ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != (Member{ID: "n1", Addr: "http://a:1"}) || ms[1] != (Member{ID: "n2", Addr: "http://b:2"}) {
		t.Errorf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "n1", "=addr", "n1=", "  ,  "} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}
