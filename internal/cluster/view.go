package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// View is one immutable generation of the cluster membership: a
// monotonically increasing epoch plus the member set at that epoch.
// Membership changes (join, drain) mint a new view with Epoch+1; peers
// adopt whichever view supersedes their own, so the fleet converges on
// one ring without a coordination service. Members are kept sorted by
// id so a view has exactly one wire form.
type View struct {
	Epoch   int64    `json:"epoch"`
	Members []Member `json:"members"`
}

// Validate checks the structural invariants every adoptable view must
// satisfy: at least one member, no empty or duplicate ids, no missing
// addresses. Note that a view need NOT contain the adopting node — a
// drained node legitimately adopts the view that excludes it (it keeps
// serving by forwarding into the ring it left).
func (v View) Validate() error {
	if len(v.Members) == 0 {
		return fmt.Errorf("cluster: view %d has no members", v.Epoch)
	}
	if v.Epoch < 0 {
		return fmt.Errorf("cluster: negative view epoch %d", v.Epoch)
	}
	seen := map[string]bool{}
	for _, m := range v.Members {
		if m.ID == "" {
			return fmt.Errorf("cluster: view %d has a member with an empty id", v.Epoch)
		}
		if m.Addr == "" {
			return fmt.Errorf("cluster: view %d member %q has no address", v.Epoch, m.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("cluster: view %d has duplicate member id %q", v.Epoch, m.ID)
		}
		seen[m.ID] = true
	}
	return nil
}

// Clone returns a deep copy with members sorted by id (the canonical
// order every comparison and wire encoding uses).
func (v View) Clone() View {
	out := View{Epoch: v.Epoch, Members: append([]Member(nil), v.Members...)}
	sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].ID < out.Members[j].ID })
	return out
}

// Fingerprint hashes the canonical member list (epoch excluded). Two
// views with the same epoch but different memberships — e.g. two nodes
// that each accepted a different change concurrently — are ordered by
// fingerprint, so every node picks the same winner and the fleet
// converges instead of flapping.
func (v View) Fingerprint() uint64 {
	c := v.Clone()
	var sb strings.Builder
	for _, m := range c.Members {
		sb.WriteString(m.ID)
		sb.WriteByte('=')
		sb.WriteString(m.Addr)
		sb.WriteByte('\n')
	}
	return hash64(sb.String())
}

// supersedes reports whether v should replace cur: a higher epoch
// always wins; at equal epochs the greater membership fingerprint wins
// (an arbitrary but total tie-break — symmetric, so two disagreeing
// nodes converge on the same view). A view never supersedes itself.
func (v View) supersedes(cur View) bool {
	if v.Epoch != cur.Epoch {
		return v.Epoch > cur.Epoch
	}
	return v.Fingerprint() > cur.Fingerprint()
}

// member reports whether id is in the view.
func (v View) member(id string) bool {
	for _, m := range v.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// JoinRequest is the POST /cluster/join body: the joining node's
// identity and the address peers reach it at.
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// DrainRequest is the POST /cluster/drain body: the member to remove
// from the ring. The drained node keeps serving (forwarding into the
// ring) and hands its records off via the rebalancer; it is the
// graceful counterpart of a kill.
type DrainRequest struct {
	ID string `json:"id"`
}

// JoinVia announces self to a live cluster through one seed peer: it
// POSTs /cluster/join and returns the new view (which includes self).
// The caller adopts the returned view; the seed broadcasts it to the
// rest of the membership. mistserve -join boots through this.
func JoinVia(ctx context.Context, client Doer, peerAddr string, self Member) (View, error) {
	if self.ID == "" || self.Addr == "" {
		return View{}, fmt.Errorf("cluster: join needs both an id and an advertise address")
	}
	body, err := json.Marshal(JoinRequest{ID: self.ID, Addr: self.Addr})
	if err != nil {
		return View{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(peerAddr, "/")+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return View{}, fmt.Errorf("cluster: join via %s: %w", peerAddr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return View{}, fmt.Errorf("cluster: join via %s refused: %d %s",
			peerAddr, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return View{}, fmt.Errorf("cluster: decoding join reply: %w", err)
	}
	if err := v.Validate(); err != nil {
		return View{}, err
	}
	if !v.member(self.ID) {
		return View{}, fmt.Errorf("cluster: join reply view %d does not include %s", v.Epoch, self.ID)
	}
	return v, nil
}
