package cluster

import "time"

// Clock is the protocol layer's injectable time source. The cluster
// package is nodeterm-clean: no code in it reads the wall clock or
// schedules on it directly, so the whole membership/anti-entropy
// protocol can run under a virtual clock in the deterministic
// simulation harness (ROADMAP item 4). Production wiring uses
// SystemClock; a simulator substitutes its own.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Ticker returns a channel delivering ticks every d, plus a stop
	// function releasing the ticker's resources.
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// realClock is the production Clock backed by the runtime's timers. It
// is the single sanctioned wall-clock access point in this package —
// the only place the nodeterm analyzer is silenced.
type realClock struct{}

func (realClock) Now() time.Time {
	//mistlint:ignore nodeterm realClock is the one sanctioned wall-clock seam behind the Clock interface
	return time.Now()
}

func (realClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	//mistlint:ignore nodeterm realClock is the one sanctioned wall-clock seam behind the Clock interface
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// SystemClock is the Clock used when none is injected.
var SystemClock Clock = realClock{}
