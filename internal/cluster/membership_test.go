package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// ParsePeers must refuse every malformed wire form with a useful error,
// not silently mis-parse — a bad -peers flag is operator input.
func TestParsePeersMalformed(t *testing.T) {
	cases := []string{
		"",                        // empty
		"  ,  ",                   // separators only
		"n1",                      // no =
		"=addr",                   // empty id
		"n1=",                     // empty addr
		" = ",                     // both empty
		"n1=http://a,n1=http://b", // duplicate id, different addrs
		"n1=http://a,n1=http://a", // duplicate id, same addr
		"n1=http://a,,n2",         // one good, one bad
	}
	for _, bad := range cases {
		if ms, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted: %+v", bad, ms)
		}
	}
	// Addresses may contain '=' (query strings); only the first cut
	// splits.
	ms, err := ParsePeers("n1=http://a?x=1")
	if err != nil || len(ms) != 1 || ms[0].Addr != "http://a?x=1" {
		t.Errorf("ParsePeers with = in addr: %+v, %v", ms, err)
	}
	// Output is sorted by id regardless of input order.
	ms, err = ParsePeers("n2=http://b,n1=http://a")
	if err != nil || ms[0].ID != "n1" || ms[1].ID != "n2" {
		t.Errorf("ParsePeers not sorted: %+v, %v", ms, err)
	}
}

func mustCluster(t *testing.T, self string, members []Member, client Doer) *Cluster {
	t.Helper()
	cl, err := New(Config{Self: self, Members: members, Replicas: 2, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// A join bumps the epoch, grows the ring, and is idempotent for an
// identical re-announce; an id collision at a different address is
// refused.
func TestProposeJoin(t *testing.T) {
	cl := mustCluster(t, "n1", testMembers(), newFakeDoer())
	v, changed, err := cl.ProposeJoin(Member{ID: "n4", Addr: "http://n4"})
	if err != nil || !changed {
		t.Fatalf("join: %v changed=%v", err, changed)
	}
	if v.Epoch != 1 || len(v.Members) != 4 || cl.Epoch() != 1 {
		t.Fatalf("view after join: %+v (epoch %d)", v, cl.Epoch())
	}
	if _, ok := cl.Member("n4"); !ok {
		t.Error("joined member not in table")
	}
	// Idempotent re-announce: same view back, no epoch bump.
	v2, changed, err := cl.ProposeJoin(Member{ID: "n4", Addr: "http://n4"})
	if err != nil || changed || v2.Epoch != 1 {
		t.Errorf("re-join: %+v changed=%v err=%v", v2, changed, err)
	}
	// Same id, different address: refused.
	if _, _, err := cl.ProposeJoin(Member{ID: "n4", Addr: "http://elsewhere"}); err == nil {
		t.Error("conflicting join accepted")
	}
	if _, _, err := cl.ProposeJoin(Member{ID: "", Addr: "http://x"}); err == nil {
		t.Error("empty-id join accepted")
	}
}

// A drain shrinks the ring (epoch+1); draining self leaves the node
// serving but out of the ring; unknown members and the last member are
// refused.
func TestProposeDrain(t *testing.T) {
	cl := mustCluster(t, "n1", testMembers(), newFakeDoer())
	v, changed, err := cl.ProposeDrain("n3")
	if err != nil || !changed || v.Epoch != 1 || len(v.Members) != 2 {
		t.Fatalf("drain: %+v changed=%v err=%v", v, changed, err)
	}
	if _, _, err := cl.ProposeDrain("nX"); err == nil {
		t.Error("unknown drain accepted")
	}
	// Self-drain: the node adopts a view excluding itself.
	if _, _, err := cl.ProposeDrain("n1"); err != nil {
		t.Fatal(err)
	}
	if cl.InRing() {
		t.Error("self still in ring after self-drain")
	}
	if got := cl.ReplicationFactor(); got != 1 {
		t.Errorf("effective R %d with one member left, want 1", got)
	}
	for _, m := range cl.Route("some-key") {
		if m.ID == "n1" {
			t.Error("drained self still routed")
		}
	}
	// Down to one member: the last drain is refused.
	if _, _, err := cl.ProposeDrain("n2"); err == nil {
		t.Error("draining the last member accepted")
	}
}

// Two nodes that accepted conflicting changes at the same epoch must
// converge: exactly one of the two views wins on both, chosen by the
// membership fingerprint tie-break.
func TestConflictingEpochViewsConverge(t *testing.T) {
	two := []Member{{ID: "n1", Addr: "http://n1"}, {ID: "n2", Addr: "http://n2"}}
	c1 := mustCluster(t, "n1", two, newFakeDoer())
	c2 := mustCluster(t, "n2", two, newFakeDoer())

	vA := View{Epoch: 5, Members: append(append([]Member(nil), two...), Member{ID: "n3", Addr: "http://n3"})}
	vB := View{Epoch: 5, Members: append(append([]Member(nil), two...), Member{ID: "n4", Addr: "http://n4"})}
	if ok, err := c1.AdoptView(vA); err != nil || !ok {
		t.Fatalf("c1 adopt A: %v %v", ok, err)
	}
	if ok, err := c2.AdoptView(vB); err != nil || !ok {
		t.Fatalf("c2 adopt B: %v %v", ok, err)
	}
	// Cross-announce: exactly one side switches.
	ok1, err := c1.AdoptView(vB)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := c2.AdoptView(vA)
	if err != nil {
		t.Fatal(err)
	}
	if ok1 == ok2 {
		t.Errorf("tie-break not total: c1 adopted B=%v, c2 adopted A=%v", ok1, ok2)
	}
	f1, f2 := c1.CurrentView().Fingerprint(), c2.CurrentView().Fingerprint()
	if f1 != f2 {
		t.Errorf("views did not converge: %x vs %x", f1, f2)
	}
	// Re-announcing the loser never flips the winner back.
	before := c1.CurrentView().Fingerprint()
	_, _ = c1.AdoptView(vA)
	_, _ = c1.AdoptView(vB)
	if got := c1.CurrentView().Fingerprint(); got != before {
		t.Error("converged view flipped on re-announcement")
	}
	// A higher epoch always wins regardless of fingerprint.
	v6 := View{Epoch: 6, Members: two}
	if ok, _ := c1.AdoptView(v6); !ok {
		t.Error("higher epoch rejected")
	}
	// Stale and invalid views are refused.
	if ok, _ := c1.AdoptView(vA); ok {
		t.Error("stale epoch adopted")
	}
	if _, err := c1.AdoptView(View{Epoch: 7}); err == nil {
		t.Error("empty view adopted")
	}
}

// epochDoer answers /healthz with an epoch (and optional view
// fingerprint) and /cluster/view with a canned view, recording pushed
// views — the wire surface probe-driven view sync rides on.
type epochDoer struct {
	mu     sync.Mutex
	epoch  int64
	viewFp string // "" omits the field (pre-fingerprint peer)
	view   View
	gets   int
	pushed []View
}

func (d *epochDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := httptest.NewRecorder()
	switch req.URL.Path {
	case "/healthz":
		hb := map[string]any{"ok": true, "epoch": d.epoch}
		if d.viewFp != "" {
			hb["viewFp"] = d.viewFp
		}
		json.NewEncoder(rec).Encode(hb)
	case "/cluster/view":
		if req.Method == http.MethodPost {
			var v View
			if json.NewDecoder(req.Body).Decode(&v) == nil {
				d.pushed = append(d.pushed, v)
			}
			json.NewEncoder(rec).Encode(map[string]any{"adopted": true})
			break
		}
		d.gets++
		json.NewEncoder(rec).Encode(d.view)
	default:
		rec.WriteHeader(http.StatusNotFound)
	}
	return rec.Result(), nil
}

// The probe loop is the anti-entropy channel: a peer answering probes
// with a higher epoch causes this node to fetch and adopt its view,
// with no membership-change request ever reaching this node directly.
func TestEpochSyncViaProbes(t *testing.T) {
	two := []Member{{ID: "n1", Addr: "http://n1"}, {ID: "n2", Addr: "http://n2"}}
	next := View{Epoch: 3, Members: append(append([]Member(nil), two...), Member{ID: "n3", Addr: "http://n3"})}
	doer := &epochDoer{epoch: 3, view: next}
	cl := mustCluster(t, "n1", two, doer)

	cl.Checker().ProbeOnce(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for cl.Epoch() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("epoch never synced: at %d, peer announced %d", cl.Epoch(), 3)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := cl.Member("n3"); !ok {
		t.Error("synced view lost the new member")
	}
	if got := cl.Checker().PeerEpoch("n2"); got != 3 {
		t.Errorf("recorded peer epoch %d, want 3", got)
	}
	// Probing again at the same epoch must not re-fetch the view.
	doer.mu.Lock()
	gets := doer.gets
	doer.mu.Unlock()
	cl.Checker().ProbeOnce(context.Background())
	time.Sleep(20 * time.Millisecond)
	doer.mu.Lock()
	defer doer.mu.Unlock()
	if doer.gets != gets {
		t.Errorf("view re-fetched at a level epoch (%d -> %d gets)", gets, doer.gets)
	}
}

// Equal-epoch divergence (the fleet split on concurrent changes)
// reconciles through the same probe channel: the fingerprint mismatch
// triggers a sync, the superseded side adopts, and when OUR view wins
// it is pushed back to the peer — so even a node nobody probes (a
// winning joiner the fleet dropped) propagates its view.
func TestEqualEpochDivergenceReconciles(t *testing.T) {
	two := []Member{{ID: "n1", Addr: "http://n1"}, {ID: "n2", Addr: "http://n2"}}
	mine := View{Epoch: 5, Members: append(append([]Member(nil), two...), Member{ID: "n3", Addr: "http://n3"})}
	theirs := View{Epoch: 5, Members: append(append([]Member(nil), two...), Member{ID: "n4", Addr: "http://n4"})}
	doer := &epochDoer{epoch: 5, viewFp: fmt.Sprintf("%016x", theirs.Fingerprint()), view: theirs}
	cl := mustCluster(t, "n1", two, doer)
	if ok, err := cl.AdoptView(mine); err != nil || !ok {
		t.Fatalf("adopt mine: %v %v", ok, err)
	}

	cl.Checker().ProbeOnce(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	winnerFp := mine.Fingerprint()
	if theirs.supersedes(mine) {
		winnerFp = theirs.Fingerprint()
	}
	for {
		if theirs.supersedes(mine) {
			// Their view wins: we must have adopted it.
			if cl.ViewFingerprint() == winnerFp {
				break
			}
		} else {
			// Ours wins: we keep it and push it to the diverged peer.
			doer.mu.Lock()
			pushedBack := len(doer.pushed) > 0 && doer.pushed[len(doer.pushed)-1].Fingerprint() == winnerFp
			doer.mu.Unlock()
			if pushedBack && cl.ViewFingerprint() == winnerFp {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("divergence never reconciled: mine fp %x, theirs fp %x, current %x, pushed %d",
				mine.Fingerprint(), theirs.Fingerprint(), cl.ViewFingerprint(), len(doer.pushed))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A peer at the same epoch AND fingerprint triggers no sync.
	doer.mu.Lock()
	doer.epoch = cl.Epoch()
	doer.viewFp = fmt.Sprintf("%016x", cl.ViewFingerprint())
	gets := doer.gets
	doer.mu.Unlock()
	cl.Checker().ProbeOnce(context.Background())
	time.Sleep(20 * time.Millisecond)
	doer.mu.Lock()
	defer doer.mu.Unlock()
	if doer.gets != gets {
		t.Errorf("agreeing peer still re-synced (%d -> %d view gets)", gets, doer.gets)
	}
}

// Members removed by an adopted view land in the departed set (and
// leave it on rejoin) — the transitional fetch/pull paths consult it
// so a drained node's records stay reachable until handoff completes.
func TestDepartedMembersTracking(t *testing.T) {
	cl := mustCluster(t, "n1", testMembers(), newFakeDoer())
	if got := cl.DepartedMembers(); len(got) != 0 {
		t.Fatalf("fresh cluster has departed members: %v", got)
	}
	if _, _, err := cl.ProposeDrain("n3"); err != nil {
		t.Fatal(err)
	}
	dep := cl.DepartedMembers()
	if len(dep) != 1 || dep[0].ID != "n3" {
		t.Fatalf("departed after drain: %v", dep)
	}
	if _, _, err := cl.ProposeJoin(Member{ID: "n3", Addr: "http://n3"}); err != nil {
		t.Fatal(err)
	}
	if got := cl.DepartedMembers(); len(got) != 0 {
		t.Errorf("rejoined member still departed: %v", got)
	}
}

// SetPeers (driven by view adoption) keeps health state for retained
// peers, drops it for removed ones, and probes new ones; the full
// ok -> suspect -> down -> ok cycle survives a membership change.
func TestSetPeersHealthTransitions(t *testing.T) {
	c := NewChecker("n1", testMembers(), newFakeDoer(), time.Second, 3)
	// Drive n2 to Down through the full progression.
	for i, want := range []Health{Suspect, Suspect, Down} {
		c.ReportFailure("n2")
		if got := c.Status("n2"); got != want {
			t.Fatalf("after %d failures: %v, want %v", i+1, got, want)
		}
	}
	c.ReportFailure("n3") // Suspect

	// Membership change: n3 leaves, n4 joins, n2 stays.
	c.SetPeers([]Member{
		{ID: "n1", Addr: "http://n1"},
		{ID: "n2", Addr: "http://n2"},
		{ID: "n4", Addr: "http://n4"},
	})
	if got := c.Status("n2"); got != Down {
		t.Errorf("retained peer lost its Down state: %v", got)
	}
	if got := c.Status("n4"); got != Ok {
		t.Errorf("new peer not Ok: %v", got)
	}
	// n3 is gone; if it ever rejoins it starts fresh.
	c.SetPeers(append(testMembers(), Member{ID: "n4", Addr: "http://n4"}))
	if got := c.Status("n3"); got != Ok {
		t.Errorf("rejoined peer inherited stale state: %v", got)
	}
	// Recovery still closes the cycle for the retained peer.
	c.ReportSuccess("n2")
	if got := c.Status("n2"); got != Ok {
		t.Errorf("retained peer did not recover: %v", got)
	}
}

// The ring tracks adoption: keys move only as the minimal-movement
// property allows, and the effective replication factor follows the
// member count.
func TestAdoptionRebuildsRing(t *testing.T) {
	cl := mustCluster(t, "n1", testMembers(), newFakeDoer())
	keys := make([]string, 200)
	ownerBefore := map[string]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		ownerBefore[keys[i]] = cl.Owner(keys[i])
	}
	if _, _, err := cl.ProposeJoin(Member{ID: "n4", Addr: "http://n4"}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := cl.Owner(k)
		if after != ownerBefore[k] {
			moved++
			if after != "n4" {
				t.Errorf("key %s moved %s -> %s, not to the joining member", k, ownerBefore[k], after)
			}
		}
	}
	if moved == 0 {
		t.Error("no key moved to the joining member")
	}
	if moved > len(keys)/2 {
		t.Errorf("%d/%d keys moved on one join — far past the ~1/N share", moved, len(keys))
	}
}

// blockingDoer answers /healthz with a higher epoch, then parks any
// /cluster/view fetch until the request's context is canceled — the
// shape of a peer that wedges mid-sync.
type blockingDoer struct {
	fetching chan struct{} // closed when the first view fetch arrives
	once     sync.Once
	mu       sync.Mutex
	canceled bool
}

func (d *blockingDoer) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	switch req.URL.Path {
	case "/healthz":
		json.NewEncoder(rec).Encode(map[string]any{"ok": true, "epoch": int64(5)})
	case "/cluster/view":
		d.once.Do(func() { close(d.fetching) })
		<-req.Context().Done()
		d.mu.Lock()
		d.canceled = true
		d.mu.Unlock()
		return nil, req.Context().Err()
	default:
		rec.WriteHeader(http.StatusNotFound)
	}
	return rec.Result(), nil
}

// Regression: Stop must cancel and wait out an in-flight view sync.
// The sync goroutine used to run detached on context.Background(), so
// Stop returned while the fetch kept its connection and goroutine
// alive past shutdown. Now the sync inherits the prober's context and
// is WaitGroup-tracked: Stop cancels it and blocks until it finishes.
func TestStopCancelsInFlightViewSync(t *testing.T) {
	two := []Member{{ID: "n1", Addr: "http://n1"}, {ID: "n2", Addr: "http://n2"}}
	doer := &blockingDoer{fetching: make(chan struct{})}
	cl := mustCluster(t, "n1", two, doer)

	cl.Start(5 * time.Millisecond)
	select {
	case <-doer.fetching:
	case <-time.After(5 * time.Second):
		cl.Stop()
		t.Fatal("probe loop never triggered a view sync")
	}

	done := make(chan struct{})
	go func() { cl.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return while a view sync was in flight")
	}
	doer.mu.Lock()
	defer doer.mu.Unlock()
	if !doer.canceled {
		t.Error("in-flight view fetch never observed cancellation")
	}
}
