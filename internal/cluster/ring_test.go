package cluster

import (
	"fmt"
	"math"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real fingerprint keys, not random noise.
		keys[i] = fmt.Sprintf("gpt3-%d|l4|%d|%d|%d|true|mist", i%7, 2<<(i%5), 4+i%64, 256+16*i)
	}
	return keys
}

func ringOrFatal(t *testing.T, ids []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(ids, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	return ids
}

// Property: with enough virtual nodes, every member's share of a large
// key population stays within a constant factor of the fair share 1/N.
func TestRingLoadBalanceWithinBound(t *testing.T) {
	const keyCount = 20000
	keys := testKeys(keyCount)
	for _, n := range []int{2, 3, 5, 8} {
		r := ringOrFatal(t, nodeIDs(n), 200)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(keyCount) / float64(n)
		for id, c := range counts {
			ratio := float64(c) / fair
			if ratio < 0.5 || ratio > 1.75 {
				t.Errorf("n=%d: member %s owns %d keys (%.2fx fair share), outside [0.5, 1.75]",
					n, id, c, ratio)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own keys", n, len(counts))
		}
	}
}

// Property: ring ownership shares (arc lengths) approximate 1/N and
// sum to 1 — the /cluster topology view of the same balance bound.
func TestRingOwnershipSharesSumToOne(t *testing.T) {
	r := ringOrFatal(t, nodeIDs(5), 200)
	shares := r.OwnershipShare()
	sum := 0.0
	for id, s := range shares {
		sum += s
		if s < 0.5/5 || s > 1.75/5 {
			t.Errorf("member %s ring share %.4f outside [%.4f, %.4f]", id, s, 0.5/5.0, 1.75/5.0)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

// Property: a member join moves only ~K/(N+1) keys, every moved key
// moves TO the joiner, and no key moves between surviving members —
// the defining consistency property of the ring.
func TestRingJoinMovesOnlyExpectedKeys(t *testing.T) {
	const keyCount = 20000
	keys := testKeys(keyCount)
	for _, n := range []int{2, 3, 7} {
		before := ringOrFatal(t, nodeIDs(n), 200)
		after := ringOrFatal(t, nodeIDs(n+1), 200) // joiner: n<n+1>
		joiner := fmt.Sprintf("n%d", n+1)
		moved := 0
		for _, k := range keys {
			a, b := before.Owner(k), after.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != joiner {
				t.Fatalf("n=%d: key moved %s -> %s, not to the joiner %s", n, a, b, joiner)
			}
		}
		expected := float64(keyCount) / float64(n+1)
		if float64(moved) > 2*expected {
			t.Errorf("n=%d: join moved %d keys, want <= 2x expected %.0f", n, moved, expected)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved no keys", n)
		}
	}
}

// Property: a member leave moves only the keys it owned, all other
// ownership is untouched.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	const keyCount = 20000
	keys := testKeys(keyCount)
	ids := nodeIDs(5)
	before := ringOrFatal(t, ids, 200)
	departed := ids[2] // n3
	var survivors []string
	for _, id := range ids {
		if id != departed {
			survivors = append(survivors, id)
		}
	}
	after := ringOrFatal(t, survivors, 200)
	moved := 0
	for _, k := range keys {
		a, b := before.Owner(k), after.Owner(k)
		if a == departed {
			moved++
			if b == departed {
				t.Fatalf("departed member still owns %q", k)
			}
			continue
		}
		if a != b {
			t.Fatalf("key %q moved %s -> %s though neither is the departed %s", k, a, b, departed)
		}
	}
	expected := float64(keyCount) / 5
	if float64(moved) > 2*expected || moved == 0 {
		t.Errorf("leave moved %d keys, want ~%.0f (<= 2x)", moved, expected)
	}
}

// Replica sets are distinct, owner-first, deterministic, and capped at
// the member count.
func TestRingReplicas(t *testing.T) {
	r := ringOrFatal(t, nodeIDs(3), 64)
	for _, k := range testKeys(500) {
		reps := r.Replicas(k, 2)
		if len(reps) != 2 {
			t.Fatalf("want 2 replicas, got %v", reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("replica set %v does not lead with owner %s", reps, r.Owner(k))
		}
		if reps[0] == reps[1] {
			t.Fatalf("duplicate members in replica set %v", reps)
		}
		if got := r.Replicas(k, 10); len(got) != 3 {
			t.Fatalf("replicas beyond membership: %v", got)
		}
	}
	if got := r.Replicas("anything", 0); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
}

// The ring is a pure function of (members, vnodes): two nodes given the
// same membership in different orders agree on every ownership
// decision — the property that lets the cluster route without any
// coordination.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := ringOrFatal(t, []string{"n1", "n2", "n3"}, 64)
	b := ringOrFatal(t, []string{"n3", "n1", "n2"}, 64)
	for _, k := range testKeys(1000) {
		ra, rb := a.Replicas(k, 2), b.Replicas(k, 2)
		if len(ra) != len(rb) || ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("ring order disagreement for %q: %v vs %v", k, ra, rb)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Error("empty member id accepted")
	}
	r, err := NewRing([]string{"a", "a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 2 {
		t.Errorf("dedup failed: %v", got)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes %d, want default %d", r.VNodes(), DefaultVNodes)
	}
}
