package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health is a peer's observed liveness state as seen from this node.
// The progression is purely local: every node runs its own checker and
// may disagree transiently with its peers.
type Health int

const (
	// Ok: the last probe or forward succeeded.
	Ok Health = iota
	// Suspect: at least one recent failure, but fewer than the down
	// threshold — still routed, after healthy peers.
	Suspect
	// Down: consecutive failures reached the threshold — routed around
	// entirely until a probe succeeds again.
	Down
)

func (h Health) String() string {
	switch h {
	case Ok:
		return "ok"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// Doer executes one HTTP request. *http.Client satisfies it; in-process
// harnesses substitute a switchboard that routes to handlers directly.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Checker tracks peer health from two signals: active /healthz probes
// (ProbeOnce, typically on a timer) and passive reports from the
// forwarding path (ReportFailure/ReportSuccess), so a dead peer is
// noticed at the first failed forward, not only at the next probe tick.
type Checker struct {
	self      string
	client    Doer
	timeout   time.Duration
	downAfter int

	mu    sync.Mutex
	fails map[string]int // consecutive failures by peer id
	addrs map[string]string
}

// NewChecker builds a checker over the peer set (self is always Ok and
// never probed). downAfter is the consecutive-failure count at which a
// peer turns Down (min 1); timeout bounds one probe.
func NewChecker(self string, members []Member, client Doer, timeout time.Duration, downAfter int) *Checker {
	if downAfter < 1 {
		downAfter = 1
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	c := &Checker{
		self:      self,
		client:    client,
		timeout:   timeout,
		downAfter: downAfter,
		fails:     map[string]int{},
		addrs:     map[string]string{},
	}
	for _, m := range members {
		if m.ID != self {
			c.addrs[m.ID] = m.Addr
		}
	}
	return c
}

// Status reports a peer's current health (self and unknown ids are Ok).
func (c *Checker) Status(id string) Health {
	if id == c.self {
		return Ok
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch f := c.fails[id]; {
	case f == 0:
		return Ok
	case f < c.downAfter:
		return Suspect
	default:
		return Down
	}
}

// ReportSuccess records a successful interaction with a peer, resetting
// it to Ok.
func (c *Checker) ReportSuccess(id string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	c.fails[id] = 0
	c.mu.Unlock()
}

// ReportFailure records a failed interaction with a peer (transport
// error or 5xx), advancing Ok → Suspect → Down.
func (c *Checker) ReportFailure(id string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	if c.fails[id] < c.downAfter {
		c.fails[id]++
	}
	c.mu.Unlock()
}

// ProbeOnce probes every peer's /healthz concurrently and records the
// outcomes. One round is bounded by the checker's probe timeout.
func (c *Checker) ProbeOnce(ctx context.Context) {
	c.mu.Lock()
	peers := make([]Member, 0, len(c.addrs))
	for id, addr := range c.addrs {
		peers = append(peers, Member{ID: id, Addr: addr})
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p Member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.Addr+"/healthz", nil)
			if err != nil {
				c.ReportFailure(p.ID)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.ReportFailure(p.ID)
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= http.StatusInternalServerError {
				c.ReportFailure(p.ID)
				return
			}
			c.ReportSuccess(p.ID)
		}(p)
	}
	wg.Wait()
}

// Run probes on the interval until ctx is canceled. An immediate first
// round runs before the first tick so a fresh node converges quickly.
func (c *Checker) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.ProbeOnce(ctx)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ProbeOnce(ctx)
		}
	}
}
