package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Health is a peer's observed liveness state as seen from this node.
// The progression is purely local: every node runs its own checker and
// may disagree transiently with its peers.
type Health int

const (
	// Ok: the last probe or forward succeeded.
	Ok Health = iota
	// Suspect: at least one recent failure, but fewer than the down
	// threshold — still routed, after healthy peers.
	Suspect
	// Down: consecutive failures reached the threshold — routed around
	// entirely until a probe succeeds again.
	Down
)

func (h Health) String() string {
	switch h {
	case Ok:
		return "ok"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// Doer executes one HTTP request. *http.Client satisfies it; in-process
// harnesses substitute a switchboard that routes to handlers directly.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Checker tracks peer health from two signals: active /healthz probes
// (ProbeOnce, typically on a timer) and passive reports from the
// forwarding path (ReportFailure/ReportSuccess), so a dead peer is
// noticed at the first failed forward, not only at the next probe tick.
// Probe replies that carry a view epoch are surfaced through the
// OnPeerEpoch hook — the signal the elastic membership layer uses to
// notice it fell behind a join or drain.
type Checker struct {
	self      string
	client    Doer
	timeout   time.Duration
	downAfter int
	clock     Clock

	mu           sync.Mutex
	fails        map[string]int // consecutive failures by peer id
	addrs        map[string]string
	epochs       map[string]int64 // last view epoch seen in a probe reply
	onEpoch      func(ctx context.Context, id string, epoch int64, fp uint64)
	onTransition func(id string, from, to Health)
}

// NewChecker builds a checker over the peer set (self is always Ok and
// never probed). downAfter is the consecutive-failure count at which a
// peer turns Down (min 1); timeout bounds one probe.
func NewChecker(self string, members []Member, client Doer, timeout time.Duration, downAfter int) *Checker {
	if downAfter < 1 {
		downAfter = 1
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	c := &Checker{
		self:      self,
		client:    client,
		timeout:   timeout,
		downAfter: downAfter,
		clock:     SystemClock,
		fails:     map[string]int{},
		addrs:     map[string]string{},
		epochs:    map[string]int64{},
	}
	for _, m := range members {
		if m.ID != self {
			c.addrs[m.ID] = m.Addr
		}
	}
	return c
}

// SetPeers replaces the probed peer set (self excluded automatically)
// after a membership change. Health state carries over for retained
// peers — a Down node that stays in the ring stays Down — and is
// dropped for removed ones, so a drained-then-rejoining node starts
// fresh.
func (c *Checker) SetPeers(members []Member) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]string, len(members))
	for _, m := range members {
		if m.ID != c.self {
			next[m.ID] = m.Addr
		}
	}
	for id := range c.fails {
		if _, keep := next[id]; !keep {
			delete(c.fails, id)
			delete(c.epochs, id)
		}
	}
	c.addrs = next
}

// SetOnPeerEpoch installs the hook invoked (from probe goroutines)
// whenever a probe reply carries a view epoch; fp is the peer's
// membership fingerprint (0 for peers that predate fingerprint
// piggybacking). The hook receives the probe round's context, so work
// it starts is canceled when the prober stops. One hook at a time;
// install before the prober starts.
func (c *Checker) SetOnPeerEpoch(fn func(ctx context.Context, id string, epoch int64, fp uint64)) {
	c.mu.Lock()
	c.onEpoch = fn
	c.mu.Unlock()
}

// SetOnTransition installs the hook invoked (outside the checker lock)
// whenever a peer's derived health state changes — the cluster event
// timeline hangs here. One hook at a time; install before traffic.
func (c *Checker) SetOnTransition(fn func(id string, from, to Health)) {
	c.mu.Lock()
	c.onTransition = fn
	c.mu.Unlock()
}

// statusLocked derives a peer's health from its failure count; caller
// holds mu.
func (c *Checker) statusLocked(id string) Health {
	switch f := c.fails[id]; {
	case f == 0:
		return Ok
	case f < c.downAfter:
		return Suspect
	default:
		return Down
	}
}

// SetClock injects the protocol clock (default SystemClock); the
// deterministic simulation harness substitutes a virtual one. Set
// before the prober starts.
func (c *Checker) SetClock(clk Clock) {
	if clk != nil {
		c.clock = clk
	}
}

// PeerEpoch reports the last view epoch a peer announced in a probe
// reply (0 when never seen or not an epoch-aware peer).
func (c *Checker) PeerEpoch(id string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs[id]
}

// Status reports a peer's current health (self and unknown ids are Ok).
func (c *Checker) Status(id string) Health {
	if id == c.self {
		return Ok
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(id)
}

// ReportSuccess records a successful interaction with a peer, resetting
// it to Ok.
func (c *Checker) ReportSuccess(id string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	from := c.statusLocked(id)
	c.fails[id] = 0
	to := c.statusLocked(id)
	fn := c.onTransition
	c.mu.Unlock()
	if fn != nil && from != to {
		fn(id, from, to)
	}
}

// ReportFailure records a failed interaction with a peer (transport
// error or 5xx), advancing Ok → Suspect → Down.
func (c *Checker) ReportFailure(id string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	from := c.statusLocked(id)
	if c.fails[id] < c.downAfter {
		c.fails[id]++
	}
	to := c.statusLocked(id)
	fn := c.onTransition
	c.mu.Unlock()
	if fn != nil && from != to {
		fn(id, from, to)
	}
}

// recordEpoch stores a probed peer's announced epoch and returns the
// hook to invoke (outside the checker lock).
func (c *Checker) recordEpoch(id string, epoch int64) func(context.Context, string, int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[id] = epoch
	return c.onEpoch
}

// ProbeOnce probes every peer's /healthz concurrently and records the
// outcomes. One round is bounded by the checker's probe timeout.
func (c *Checker) ProbeOnce(ctx context.Context) {
	c.mu.Lock()
	peers := make([]Member, 0, len(c.addrs))
	for id, addr := range c.addrs {
		peers = append(peers, Member{ID: id, Addr: addr})
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p Member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.Addr+"/healthz", nil)
			if err != nil {
				c.ReportFailure(p.ID)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.ReportFailure(p.ID)
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode >= http.StatusInternalServerError {
				c.ReportFailure(p.ID)
				return
			}
			c.ReportSuccess(p.ID)
			// Epoch piggyback: a clustered peer's /healthz reply names its
			// view epoch and membership fingerprint; surfacing them here
			// is what lets a node notice — on the existing probe cadence,
			// no extra round-trips — that a join or drain happened while
			// it was partitioned or booting, or that the fleet split on
			// concurrent changes at its own epoch.
			var hb struct {
				Epoch  int64  `json:"epoch"`
				ViewFp string `json:"viewFp"`
			}
			if json.Unmarshal(body, &hb) == nil && (hb.Epoch > 0 || hb.ViewFp != "") {
				fp, _ := strconv.ParseUint(hb.ViewFp, 16, 64)
				// The hook gets the round's context (not the per-probe
				// pctx, which expires with this reply): view syncs it
				// spawns should outlive one probe but die with the
				// prober.
				if fn := c.recordEpoch(p.ID, hb.Epoch); fn != nil {
					fn(ctx, p.ID, hb.Epoch, fp)
				}
			}
		}(p)
	}
	wg.Wait()
}

// Run probes on the interval until ctx is canceled. An immediate first
// round runs before the first tick so a fresh node converges quickly.
func (c *Checker) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.ProbeOnce(ctx)
	tick, stop := c.clock.Ticker(interval)
	defer stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			c.ProbeOnce(ctx)
		}
	}
}
