package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Wire headers of the cluster tier.
const (
	// HeaderRequestID carries the request identity assigned at ingress;
	// it is propagated through forwarded hops, into job records, and
	// into log lines.
	HeaderRequestID = "X-Mist-Request-Id"
	// HeaderForwardedBy marks a request already forwarded once (value:
	// the forwarding node's id). A node receiving it always serves
	// locally — forwarding is at most one hop, so routing disagreements
	// can never loop.
	HeaderForwardedBy = "X-Mist-Forwarded-By"
	// HeaderServedBy names the node that actually answered, so clients
	// and tests can observe routing.
	HeaderServedBy = "X-Mist-Served-By"
)

// Member is one node of the static membership: a stable id plus the
// base URL peers reach it at.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Config assembles a Cluster.
type Config struct {
	// Self is this node's id; it must appear in Members.
	Self string
	// Members is the full static membership, self included.
	Members []Member
	// Replicas is the replication factor R: each fingerprint gets an
	// owner plus R−1 replicas (default 2, capped at the member count).
	Replicas int
	// VNodes is the per-member virtual-node count (default
	// DefaultVNodes).
	VNodes int
	// Client executes forwarded requests and probes (default: an
	// http.Client with a 2-minute timeout, matching a long search).
	Client Doer
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure threshold for Down
	// (default 3).
	DownAfter int
}

// Cluster is one node's view of the sharded tier: the ring, the member
// table, the health checker, and the forwarding client. Safe for
// concurrent use.
type Cluster struct {
	self    string
	rf      int
	members map[string]Member
	order   []string
	ring    *Ring
	checker *Checker
	client  Doer

	mu     sync.Mutex
	cancel context.CancelFunc
}

// New validates the membership and builds the node's cluster view.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	members := map[string]Member{}
	ids := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty id")
		}
		if _, dup := members[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		if m.Addr == "" {
			return nil, fmt.Errorf("cluster: member %q has no address", m.ID)
		}
		members[m.ID] = m
		ids = append(ids, m.ID)
	}
	if _, ok := members[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in member list", cfg.Self)
	}
	rf := cfg.Replicas
	if rf < 1 {
		rf = 2
	}
	if rf > len(ids) {
		rf = len(ids)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	downAfter := cfg.DownAfter
	if downAfter < 1 {
		downAfter = 3
	}
	sort.Strings(ids)
	return &Cluster{
		self:    cfg.Self,
		rf:      rf,
		members: members,
		order:   ids,
		ring:    ring,
		checker: NewChecker(cfg.Self, cfg.Members, client, cfg.ProbeTimeout, downAfter),
		client:  client,
	}, nil
}

// Self returns this node's id.
func (c *Cluster) Self() string { return c.self }

// ReplicationFactor returns R (owner + R−1 replicas per fingerprint).
func (c *Cluster) ReplicationFactor() int { return c.rf }

// Ring exposes the consistent-hash ring (for topology reporting).
func (c *Cluster) Ring() *Ring { return c.ring }

// Members returns the membership sorted by id.
func (c *Cluster) Members() []Member {
	out := make([]Member, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.members[id])
	}
	return out
}

// Member looks up one member by id.
func (c *Cluster) Member(id string) (Member, bool) {
	m, ok := c.members[id]
	return m, ok
}

// Health reports a peer's current health as seen from this node.
func (c *Cluster) Health(id string) Health { return c.checker.Status(id) }

// Checker exposes the health checker (passive reports from custom
// transports, deterministic probing in tests).
func (c *Cluster) Checker() *Checker { return c.checker }

// Owner returns the ring owner of a key, health ignored.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Replicas returns the key's full replica set (owner first), health
// ignored — the set a completed plan is replicated to.
func (c *Cluster) Replicas(key string) []Member {
	ids := c.ring.Replicas(key, c.rf)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.members[id])
	}
	return out
}

// ReplicaTargets returns the key's replica set excluding self — the
// peers a locally completed plan must be written through to.
func (c *Cluster) ReplicaTargets(key string) []Member {
	var out []Member
	for _, m := range c.Replicas(key) {
		if m.ID != c.self {
			out = append(out, m)
		}
	}
	return out
}

// Route orders the key's replica set for serving: owner-first, Down
// peers dropped, Ok peers ahead of Suspect ones. The serving layer
// walks the list — a candidate equal to self means "serve locally";
// otherwise it forwards, advancing on failure. An empty list (every
// replica down, self not among them) means serve locally as a last
// resort: availability over strict single-flight.
func (c *Cluster) Route(key string) []Member {
	reps := c.ring.Replicas(key, c.rf)
	ok := make([]Member, 0, len(reps))
	var suspect []Member
	for _, id := range reps {
		switch c.checker.Status(id) {
		case Ok:
			ok = append(ok, c.members[id])
		case Suspect:
			suspect = append(suspect, c.members[id])
		}
	}
	return append(ok, suspect...)
}

// Forward sends one already-read request to a peer: method and path are
// preserved, the body is replayed from bytes, the request id and
// content type are propagated, and HeaderForwardedBy pins the hop count
// to one. The outcome feeds the health checker, so a dead peer is
// noticed at the first failed forward.
func (c *Cluster) Forward(ctx context.Context, m Member, method, path, requestID, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, m.Addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if requestID != "" {
		req.Header.Set(HeaderRequestID, requestID)
	}
	req.Header.Set(HeaderForwardedBy, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.checker.ReportFailure(m.ID)
		return nil, err
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		// A 5xx is a live-but-unwell signal: count it toward Suspect so
		// routing prefers healthy replicas, but return the response —
		// the caller decides whether to relay or retry.
		c.checker.ReportFailure(m.ID)
	} else {
		c.checker.ReportSuccess(m.ID)
	}
	return resp, nil
}

// Start launches the active health prober on the interval; Stop (or
// Close) ends it. Starting twice restarts the prober.
func (c *Cluster) Start(interval time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go c.checker.Run(ctx, interval)
}

// Stop ends the active prober (no-op when not started).
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// ParsePeers parses the -peers wire format: comma-separated id=addr
// pairs, e.g. "n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080".
func ParsePeers(s string) ([]Member, error) {
	var out []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=addr)", part)
		}
		out = append(out, Member{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}
