package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Wire headers of the cluster tier.
const (
	// HeaderRequestID carries the request identity assigned at ingress;
	// it is propagated through forwarded hops, into job records, and
	// into log lines.
	HeaderRequestID = "X-Mist-Request-Id"
	// HeaderForwardedBy marks a request already forwarded once (value:
	// the forwarding node's id). A node receiving it always serves
	// locally — forwarding is at most one hop, so routing disagreements
	// can never loop.
	HeaderForwardedBy = "X-Mist-Forwarded-By"
	// HeaderServedBy names the node that actually answered, so clients
	// and tests can observe routing.
	HeaderServedBy = "X-Mist-Served-By"
)

// Member is one node of the membership: a stable id plus the base URL
// peers reach it at.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Config assembles a Cluster.
type Config struct {
	// Self is this node's id; it must appear in Members.
	Self string
	// Members is the boot membership, self included. A node joining an
	// existing cluster boots with just itself and adopts the live view
	// (AdoptView / JoinVia); a statically configured fleet boots with
	// the full list at epoch 0.
	Members []Member
	// Replicas is the target replication factor R: each fingerprint
	// gets an owner plus R−1 replicas (default 2, effectively capped at
	// the current member count).
	Replicas int
	// VNodes is the per-member virtual-node count (default
	// DefaultVNodes).
	VNodes int
	// Client executes forwarded requests and probes (default: an
	// http.Client with a 2-minute timeout, matching a long search).
	Client Doer
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure threshold for Down
	// (default 3).
	DownAfter int
	// Clock is the protocol time source (default SystemClock). The
	// deterministic simulation harness injects a virtual clock here.
	Clock Clock
}

// Cluster is one node's view of the sharded tier: the epoch-versioned
// membership view, the ring built from it, the health checker, and the
// forwarding client. Safe for concurrent use; the view (and with it
// the ring and member table) is swapped atomically on adoption.
type Cluster struct {
	self     string
	rfTarget int
	vnodes   int
	client   Doer
	checker  *Checker
	events   *EventLog

	vmu          sync.RWMutex
	view         View
	viewFp       uint64
	members      map[string]Member
	ring         *Ring
	departed     map[string]Member // ex-members of superseded views, until they rejoin
	standbys     []Member          // configured warm-standby pool (see standby.go)
	onViewChange func(View)

	syncing atomic.Bool
	syncWG  sync.WaitGroup

	mu     sync.Mutex
	cancel context.CancelFunc
}

// New validates the boot membership and builds the node's cluster view
// at epoch 0.
func New(cfg Config) (*Cluster, error) {
	boot := View{Epoch: 0, Members: cfg.Members}
	if err := boot.Validate(); err != nil {
		return nil, err
	}
	if !boot.member(cfg.Self) {
		return nil, fmt.Errorf("cluster: self %q not in member list", cfg.Self)
	}
	rf := cfg.Replicas
	if rf < 1 {
		rf = 2
	}
	ids := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		ids = append(ids, m.ID)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	downAfter := cfg.DownAfter
	if downAfter < 1 {
		downAfter = 3
	}
	c := &Cluster{
		self:     cfg.Self,
		rfTarget: rf,
		vnodes:   ring.VNodes(),
		client:   client,
		checker:  NewChecker(cfg.Self, cfg.Members, client, cfg.ProbeTimeout, downAfter),
	}
	c.checker.SetClock(cfg.Clock)
	c.events = NewEventLog(cfg.Self, 0, cfg.Clock)
	// Health transitions land on the timeline as this node's local
	// observations (nodes may transiently disagree, and that disagreement
	// is itself worth seeing).
	c.checker.SetOnTransition(func(id string, from, to Health) {
		typ := EventMemberOk
		switch to {
		case Suspect:
			typ = EventMemberSuspect
		case Down:
			typ = EventMemberDown
		}
		c.events.Append(typ, id, c.Epoch(), "was "+from.String())
	})
	c.view = boot.Clone()
	c.viewFp = c.view.Fingerprint()
	c.members = map[string]Member{}
	for _, m := range c.view.Members {
		c.members[m.ID] = m
	}
	c.ring = ring
	c.departed = map[string]Member{}
	// Probe replies carry the peer's view epoch and membership
	// fingerprint; a peer ahead of us — or diverged at our own epoch —
	// is the anti-entropy signal to reconcile views.
	c.checker.SetOnPeerEpoch(c.observePeerEpoch)
	return c, nil
}

// Self returns this node's id.
func (c *Cluster) Self() string { return c.self }

// ReplicationFactor returns the effective R under the current view:
// the configured target, capped at the member count.
func (c *Cluster) ReplicationFactor() int {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	if c.rfTarget > len(c.members) {
		return len(c.members)
	}
	return c.rfTarget
}

// Ring exposes the current consistent-hash ring (for topology
// reporting). The returned ring is immutable; a membership change
// installs a fresh one.
func (c *Cluster) Ring() *Ring {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.ring
}

// CurrentView returns a copy of the membership view this node has
// adopted.
func (c *Cluster) CurrentView() View {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.view.Clone()
}

// Epoch returns the adopted view's epoch.
func (c *Cluster) Epoch() int64 {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.view.Epoch
}

// ViewFingerprint returns the adopted view's membership fingerprint —
// piggybacked on /healthz replies so peers can detect equal-epoch view
// divergence, not just being behind.
func (c *Cluster) ViewFingerprint() uint64 {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.viewFp
}

// ViewID returns the adopted view's (epoch, fingerprint) pair in one
// consistent read — the identity repair bookkeeping must key on:
// equal-epoch divergence means two different rings can share an epoch
// number, so epoch alone under-identifies the ring.
func (c *Cluster) ViewID() (epoch int64, fp uint64) {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.view.Epoch, c.viewFp
}

// DepartedMembers lists ex-members of superseded views (drained or
// replaced nodes that have not rejoined). The repair and record-fetch
// paths still consult them during a membership transition: a key whose
// previous replicas all left the ring is otherwise unreachable until
// their handoff completes.
func (c *Cluster) DepartedMembers() []Member {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	out := make([]Member, 0, len(c.departed))
	for _, m := range c.departed {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InRing reports whether this node is a member of its own adopted view
// — false after the node has been drained (it keeps serving, but only
// by forwarding into the ring it left).
func (c *Cluster) InRing() bool {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	_, ok := c.members[c.self]
	return ok
}

// Members returns the current membership sorted by id.
func (c *Cluster) Members() []Member {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return append([]Member(nil), c.view.Members...)
}

// Member looks up one current member by id.
func (c *Cluster) Member(id string) (Member, bool) {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	m, ok := c.members[id]
	return m, ok
}

// Health reports a peer's current health as seen from this node.
func (c *Cluster) Health(id string) Health { return c.checker.Status(id) }

// Checker exposes the health checker (passive reports from custom
// transports, deterministic probing in tests).
func (c *Cluster) Checker() *Checker { return c.checker }

// Events returns retained timeline events with Seq > since, oldest
// first — the GET /cluster/events surface.
func (c *Cluster) Events(since int64) []Event { return c.events.Events(since) }

// RecordEvent appends an event to this node's cluster timeline under
// the current epoch — the serving layer's hook for rebalance pass
// events, which happen above this package.
func (c *Cluster) RecordEvent(typ, member, detail string) {
	c.events.Append(typ, member, c.Epoch(), detail)
}

// SetOnViewChange installs a hook fired (outside all cluster locks)
// after every adopted membership change — the serving layer hangs its
// rebalancer kick here. Install before Start; one hook at a time.
func (c *Cluster) SetOnViewChange(fn func(View)) {
	c.vmu.Lock()
	c.onViewChange = fn
	c.vmu.Unlock()
}

// adoptLocked installs a validated view: ring, member table, departed
// set, and the checker's peer set. Caller holds vmu.
func (c *Cluster) adoptLocked(v View) error {
	v = v.Clone()
	ids := make([]string, 0, len(v.Members))
	members := make(map[string]Member, len(v.Members))
	for _, m := range v.Members {
		ids = append(ids, m.ID)
		members[m.ID] = m
	}
	ring, err := NewRing(ids, c.vnodes)
	if err != nil {
		return err
	}
	// Members leaving this view join the departed set; rejoining ones
	// leave it. The set only ever holds real ex-members, so it stays
	// small (drains are rare events).
	for id, m := range c.members {
		if _, keep := members[id]; !keep {
			c.departed[id] = m
		}
	}
	for id := range c.departed {
		if _, back := members[id]; back {
			delete(c.departed, id)
		}
	}
	c.view = v
	c.viewFp = v.Fingerprint()
	c.members = members
	c.ring = ring
	c.checker.SetPeers(v.Members)
	return nil
}

// fireViewChange invokes the view-change hook outside the view lock.
func (c *Cluster) fireViewChange(v View) {
	c.vmu.RLock()
	fn := c.onViewChange
	c.vmu.RUnlock()
	if fn != nil {
		fn(v)
	}
}

// AdoptView installs a peer-announced view when it supersedes the
// current one (higher epoch; at equal epochs the greater membership
// fingerprint wins, so conflicting announcements converge fleet-wide).
// Returns whether the view was adopted. Adopting a view that excludes
// self is legal: that is how a node learns it has been drained.
func (c *Cluster) AdoptView(v View) (bool, error) {
	if err := v.Validate(); err != nil {
		return false, err
	}
	c.vmu.Lock()
	if !v.supersedes(c.view) {
		c.vmu.Unlock()
		return false, nil
	}
	if err := c.adoptLocked(v); err != nil {
		c.vmu.Unlock()
		return false, err
	}
	adopted := c.view
	c.vmu.Unlock()
	c.events.Append(EventEpochAdopted, "", adopted.Epoch,
		fmt.Sprintf("announced view, %d members", len(adopted.Members)))
	c.fireViewChange(adopted)
	return true, nil
}

// ProposeJoin mints and locally adopts the view that adds a member at
// Epoch+1, returning it for broadcast. Re-joining with an identical
// (id, addr) is idempotent — the current view is returned unchanged
// (changed=false) so a restarted node can re-announce safely; the same
// id at a different address is refused.
func (c *Cluster) ProposeJoin(m Member) (View, bool, error) {
	if m.ID == "" || m.Addr == "" {
		return View{}, false, fmt.Errorf("cluster: join needs both an id and an address")
	}
	c.vmu.Lock()
	if ex, ok := c.members[m.ID]; ok {
		v := c.view.Clone()
		c.vmu.Unlock()
		if ex.Addr == m.Addr {
			return v, false, nil
		}
		return View{}, false, fmt.Errorf("cluster: member %q already present at %s (join asked for %s)",
			m.ID, ex.Addr, m.Addr)
	}
	nv := View{
		Epoch:   c.view.Epoch + 1,
		Members: append(append([]Member(nil), c.view.Members...), m),
	}.Clone()
	if err := c.adoptLocked(nv); err != nil {
		c.vmu.Unlock()
		return View{}, false, err
	}
	adopted := c.view
	c.vmu.Unlock()
	c.events.Append(EventEpochAdopted, m.ID, adopted.Epoch,
		fmt.Sprintf("join, %d members", len(adopted.Members)))
	c.fireViewChange(adopted)
	return adopted.Clone(), true, nil
}

// ProposeDrain mints and locally adopts the view that removes a member
// at Epoch+1, returning it for broadcast (which must include the
// drained node, so it learns to hand off and forward). Draining the
// last member is refused; draining an unknown member is an error.
func (c *Cluster) ProposeDrain(id string) (View, bool, error) {
	c.vmu.Lock()
	if _, ok := c.members[id]; !ok {
		c.vmu.Unlock()
		return View{}, false, fmt.Errorf("cluster: cannot drain unknown member %q", id)
	}
	if len(c.members) == 1 {
		c.vmu.Unlock()
		return View{}, false, fmt.Errorf("cluster: refusing to drain the last member %q", id)
	}
	nv := View{Epoch: c.view.Epoch + 1}
	for _, m := range c.view.Members {
		if m.ID != id {
			nv.Members = append(nv.Members, m)
		}
	}
	if err := c.adoptLocked(nv); err != nil {
		c.vmu.Unlock()
		return View{}, false, err
	}
	adopted := c.view
	c.vmu.Unlock()
	c.events.Append(EventEpochAdopted, id, adopted.Epoch,
		fmt.Sprintf("drain, %d members", len(adopted.Members)))
	c.fireViewChange(adopted)
	return adopted.Clone(), true, nil
}

// observePeerEpoch is the checker's probe callback: a peer announcing
// a higher epoch means we missed a membership change; a peer at OUR
// epoch with a different membership fingerprint means the fleet split
// on concurrent changes. Either way one background sync reconciles: we
// pull the peer's view, adopt it if it supersedes ours, and push ours
// back if it does not (the tie-break is total, so one side always
// yields and convergence spreads peer by peer over the probe cadence).
// At most one sync runs at a time; probes retry naturally. The sync
// goroutine inherits the prober's context and is WaitGroup-tracked, so
// Stop cancels an in-flight sync and waits for it to finish instead of
// leaking a detached RPC past shutdown.
func (c *Cluster) observePeerEpoch(ctx context.Context, id string, epoch int64, fp uint64) {
	cur, curFp := c.ViewID()
	if epoch < cur || (epoch == cur && (fp == 0 || fp == curFp)) {
		return
	}
	if !c.syncing.CompareAndSwap(false, true) {
		return
	}
	c.syncWG.Add(1)
	go func() {
		defer c.syncWG.Done()
		defer c.syncing.Store(false)
		c.syncViewWith(ctx, id)
	}()
}

// syncViewWith reconciles views with one peer: fetch, adopt if theirs
// supersedes, push ours back when it stands — the repair half of
// probe-driven view anti-entropy. Bounded by its own 5s budget within
// the caller's context, so stopping the prober aborts it.
func (c *Cluster) syncViewWith(ctx context.Context, id string) {
	m, ok := c.Member(id)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Addr+"/cluster/view", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.checker.ReportFailure(id)
		return
	}
	var v View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		return
	}
	adopted, err := c.AdoptView(v)
	if err != nil || adopted {
		return
	}
	// Their view did not supersede ours — by the total order, ours
	// supersedes theirs (or they are equal, in which case the push is a
	// harmless no-op on their side). Announce ours so the losing side
	// converges even when nobody probes US (e.g. a winning joiner the
	// rest of the fleet dropped from its probe set).
	ours := c.CurrentView()
	body, err := json.Marshal(ours)
	if err != nil {
		return
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.Addr+"/cluster/view", bytes.NewReader(body))
	if err != nil {
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	if presp, err := c.client.Do(preq); err == nil {
		presp.Body.Close()
	}
}

// Owner returns the ring owner of a key, health ignored.
func (c *Cluster) Owner(key string) string { return c.Ring().Owner(key) }

// Replicas returns the key's full replica set under the current view
// (owner first), health ignored — the set a completed plan is
// replicated to and the rebalancer repairs toward.
func (c *Cluster) Replicas(key string) []Member {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	rf := c.rfTarget
	if rf > len(c.members) {
		rf = len(c.members)
	}
	ids := c.ring.Replicas(key, rf)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.members[id])
	}
	return out
}

// ReplicaTargets returns the key's replica set excluding self — the
// peers a locally completed plan must be written through to.
func (c *Cluster) ReplicaTargets(key string) []Member {
	var out []Member
	for _, m := range c.Replicas(key) {
		if m.ID != c.self {
			out = append(out, m)
		}
	}
	return out
}

// Route orders the key's replica set for serving: owner-first, Down
// peers dropped, Ok peers ahead of Suspect ones. The serving layer
// walks the list — a candidate equal to self means "serve locally";
// otherwise it forwards, advancing on failure. An empty list (every
// replica down, self not among them) means serve locally as a last
// resort: availability over strict single-flight. On a drained node
// self never appears, so everything forwards into the ring it left.
func (c *Cluster) Route(key string) []Member {
	reps := c.Replicas(key)
	ok := make([]Member, 0, len(reps))
	var suspect []Member
	for _, m := range reps {
		switch c.checker.Status(m.ID) {
		case Ok:
			ok = append(ok, m)
		case Suspect:
			suspect = append(suspect, m)
		}
	}
	return append(ok, suspect...)
}

// Forward sends one already-read request to a peer: method and path are
// preserved, the body is replayed from bytes, the request id and
// content type are propagated, and HeaderForwardedBy pins the hop count
// to one. The outcome feeds the health checker, so a dead peer is
// noticed at the first failed forward.
func (c *Cluster) Forward(ctx context.Context, m Member, method, path, requestID, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, m.Addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if requestID != "" {
		req.Header.Set(HeaderRequestID, requestID)
	}
	// Trace context rides the same hop: the receiving node's root span
	// joins the sender's trace under the sender's active span.
	trace.Inject(ctx, req.Header)
	req.Header.Set(HeaderForwardedBy, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.checker.ReportFailure(m.ID)
		return nil, err
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		// A 5xx is a live-but-unwell signal: count it toward Suspect so
		// routing prefers healthy replicas, but return the response —
		// the caller decides whether to relay or retry.
		c.checker.ReportFailure(m.ID)
	} else {
		c.checker.ReportSuccess(m.ID)
	}
	return resp, nil
}

// Start launches the active health prober on the interval; Stop (or
// Close) ends it. Starting twice restarts the prober.
func (c *Cluster) Start(interval time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go c.checker.Run(ctx, interval)
}

// Stop ends the active prober (no-op when not started) and waits for
// any in-flight view sync the prober kicked off: after Stop returns,
// the cluster issues no further requests.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	c.mu.Unlock()
	c.syncWG.Wait()
}

// ParsePeers parses the -peers wire format: comma-separated id=addr
// pairs, e.g. "n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080".
// Duplicate ids are refused here (not just at cluster construction) so
// a mistyped flag fails with the offending pair named.
func ParsePeers(s string) ([]Member, error) {
	var out []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=addr)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
