package experiments

import (
	"fmt"

	"repro/internal/searchspace"
)

// fig5 reproduces Figure 5: configuration-count growth as optimizations
// are added, for 16-80 layer models on 32 GPUs. Counts are exact big
// integers, reported as powers of ten.
func fig5(scale Scale) (*Table, error) {
	layerGrid := []int{16, 32, 48, 64, 80}
	if scale == Small {
		layerGrid = []int{16, 32, 48}
	}
	curves := searchspace.Figure5Curves(32)
	t := &Table{
		Title:  "Figure 5: search space growth (log10 #configs, 32 GPUs)",
		Header: []string{"#layers"},
	}
	for _, c := range curves {
		t.Header = append(t.Header, c.Label)
	}
	for _, layers := range layerGrid {
		row := []interface{}{layers}
		for _, c := range curves {
			n := searchspace.Count(layers, c.Opts)
			row = append(row, fmt.Sprintf("1e%.0f", searchspace.Log10(n)))
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"paper: full space reaches ~1e150 at 80 layers; each optimization multiplies the space per stage")
	return t, nil
}
