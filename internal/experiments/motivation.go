package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/plan"
)

func init() {
	register("fig2", fig2)
	register("fig3", fig3)
	register("fig5", fig5)
}

// fig2 reproduces the motivational example of Figure 2: GPT-3 2.7B on
// 4 NVIDIA L4 GPUs, seq 4096, global batch 8. Each row tunes parallelism
// together with one family of memory optimizations; the paper reports
// speedups over the full-recomputation strategy of 1.22x (CKPT), 1.25x
// (ZeRO), 1.16x (offloading) and 1.30x (all tuned).
func fig2(scale Scale) (*Table, error) {
	w := plan.Workload{Model: model.MustByName("gpt3-2.7b"), Seq: 4096, Flash: true, GlobalBatch: 8}
	if scale == Small {
		w.Seq = 2048
	}
	cl := hardware.L4Cluster(1, 4)

	offload := core.ThreeDSpace()
	offload.Name = "tuned-offloading"
	offload.TuneWO, offload.TuneGO, offload.TuneOO, offload.TuneAO = true, true, true, true

	ckpt := core.ThreeDSpace()
	ckpt.Name = "tuned-ckpt"
	ckpt.TuneCkpt = true

	noOpt := core.ThreeDSpace()
	noOpt.Name = "no-ckpt"
	noOpt.TuneCkpt = true
	noOpt.CkptFractions = []float64{0}

	zero := core.DeepSpeedSpace()
	zero.Name = "tuned-zero"

	strategies := []core.Space{
		noOpt,              // (a) no memory optimization
		core.ThreeDSpace(), // (b) full CKPT
		ckpt,               // (c) CKPT tuned
		zero,               // (d) ZeRO tuned
		offload,            // (e) offloading tuned
		core.MistSpace(),   // (f) all tuned
	}
	t := &Table{
		Title:  "Figure 2: motivational example, GPT-3 2.7B on 4x L4 (speedup vs full CKPT)",
		Header: []string{"strategy", "throughput(samples/s)", "speedup", "plan"},
	}
	var baseline float64
	for _, space := range strategies {
		out, err := baselines.Run(w, cl, baselines.System{Name: space.Name, Space: space})
		if err != nil {
			return nil, err
		}
		if out.OOM {
			t.Add(space.Name, "OOM", "-", "-")
			continue
		}
		if space.Name == "3d" {
			baseline = out.Throughput
		}
		sp := "-"
		if baseline > 0 {
			sp = fmt.Sprintf("%.2fx", out.Throughput/baseline)
		}
		t.Add(space.Name, out.Throughput, sp, compactPlan(out.Tune.Plan))
	}
	t.Notes = append(t.Notes,
		"paper: no-opt OOMs; CKPT 1.22x, ZeRO 1.25x, offloading 1.16x, all-tuned 1.30x over full CKPT")
	return t, nil
}

// fig3 reproduces Figure 3: GPT-3 7B on 8 L4 GPUs, global batch 512.
// Tuning only activation checkpointing picks a deep pipeline with severe
// bubbles; comprehensive co-optimization trades offloaded memory for a
// shallower pipeline (paper: 1.22x over parallelism-only, 1.11x over
// parallelism+CKPT).
func fig3(scale Scale) (*Table, error) {
	w := plan.Workload{Model: model.MustByName("gpt3-7b"), Seq: 2048, Flash: true, GlobalBatch: 512}
	cl := hardware.L4Cluster(1, 8)
	if scale == Small {
		w.GlobalBatch = 64
	}
	ckptOnly := core.ThreeDSpace()
	ckptOnly.Name = "3d+ckpt"
	ckptOnly.TuneCkpt = true
	strategies := []core.Space{core.ThreeDSpace(), ckptOnly, core.MistSpace()}

	t := &Table{
		Title:  "Figure 3: comprehensive co-optimization, GPT-3 7B on 8x L4",
		Header: []string{"space", "throughput", "speedup", "S", "bubble", "plan"},
	}
	var base float64
	for _, space := range strategies {
		out, err := baselines.Run(w, cl, baselines.System{Name: space.Name, Space: space})
		if err != nil {
			return nil, err
		}
		if out.OOM {
			t.Add(space.Name, "OOM", "-", "-", "-", "-")
			continue
		}
		if base == 0 {
			base = out.Throughput
		}
		t.Add(space.Name, out.Throughput, fmt.Sprintf("%.2fx", out.Throughput/base),
			out.Tune.Plan.NumStages(), fmt.Sprintf("%.1f%%", 100*out.Meas.Bubble),
			compactPlan(out.Tune.Plan))
	}
	t.Notes = append(t.Notes,
		"paper: co-optimization reduces PP depth and bubbles; 1.22x over 3D, 1.11x over 3D+CKPT")
	return t, nil
}

// compactPlan renders a one-line plan summary.
func compactPlan(p *plan.Plan) string {
	if p == nil {
		return "-"
	}
	s := p.Stages[0]
	uniform := true
	for _, st := range p.Stages[1:] {
		if st.Knobs != s.Knobs || st.Shape.TP != s.Shape.TP || st.Shape.DP != s.Shape.DP {
			uniform = false
			break
		}
	}
	desc := fmt.Sprintf("G=%d S=%d dp=%d tp=%d b=%d zero=%d ckpt=%d/%d",
		p.GradAccum, len(p.Stages), s.Shape.DP, s.Shape.TP, s.Shape.B, s.Shape.ZeRO,
		s.Knobs.Ckpt, s.Knobs.Layers)
	if s.Knobs.WO+s.Knobs.GO+s.Knobs.OO+s.Knobs.AO > 0 {
		desc += fmt.Sprintf(" off[w%.2g g%.2g o%.2g a%.2g]", s.Knobs.WO, s.Knobs.GO, s.Knobs.OO, s.Knobs.AO)
	}
	if !uniform {
		desc += " (per-stage heterogenous)"
	}
	return desc
}
