package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/trainsim"
)

func init() {
	register("fig11", fig11)
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
}

// sizePoint is one column of Figures 11/12: model size, GPU count and
// global batch scale together (paper §6.1 methodology).
type sizePoint struct {
	size  string
	gpus  int
	batch int
}

func paperSizes() []sizePoint {
	return []sizePoint{
		{"1.3b", 2, 32}, {"2.7b", 4, 64}, {"7b", 8, 128}, {"13b", 16, 256}, {"22b", 32, 512},
	}
}

func smallSizes() []sizePoint {
	return []sizePoint{{"1.3b", 2, 32}, {"2.7b", 4, 64}}
}

func cluster(platform string, gpus int) (*hardware.Cluster, int, error) {
	nodes, perNode, err := hardware.MeshForGPUs(gpus)
	if err != nil {
		return nil, 0, err
	}
	switch platform {
	case "l4":
		return hardware.L4Cluster(nodes, perNode), 2048, nil
	case "a100":
		return hardware.A100Cluster(nodes, perNode), 4096, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown platform %q", platform)
	}
}

// endToEnd runs one Figure 11/12-style sweep.
func endToEnd(title string, families []string, platforms []string, flash bool,
	systems []baselines.System, sizes []sizePoint) (*Table, error) {
	t := &Table{Title: title, Header: []string{"platform", "model", "gpus", "batch"}}
	for _, sys := range systems {
		t.Header = append(t.Header, sys.Name)
	}
	t.Header = append(t.Header, "mist-speedup")
	for _, platform := range platforms {
		for _, fam := range families {
			for _, pt := range sizes {
				cl, seq, err := cluster(platform, pt.gpus)
				if err != nil {
					return nil, err
				}
				name := fam + "-" + pt.size
				cfg, err := model.ByName(name)
				if err != nil {
					return nil, err
				}
				w := plan.Workload{Model: cfg, Seq: seq, Flash: flash, GlobalBatch: pt.batch}
				row := []interface{}{platform, name, pt.gpus, pt.batch}
				var mist, bestBase float64
				for _, sys := range systems {
					out, err := baselines.Run(w, cl, sys)
					if err != nil {
						return nil, err
					}
					if out.OOM {
						row = append(row, "OOM")
						continue
					}
					row = append(row, out.Throughput)
					if sys.Name == "mist" {
						mist = out.Throughput
					} else if out.Throughput > bestBase {
						bestBase = out.Throughput
					}
				}
				if mist > 0 && bestBase > 0 {
					row = append(row, fmt.Sprintf("%.2fx", mist/bestBase))
				} else {
					row = append(row, "-")
				}
				t.Add(row...)
			}
		}
	}
	return t, nil
}

// fig11 reproduces the Figure 11 end-to-end comparison (FlashAttention
// enabled): Mist vs Megatron-LM and DeepSpeed over GPT-3/LLaMA/Falcon at
// the paper's size/GPU/batch grid. The paper reports Mist at 1.32x avg
// over Megatron on L4 and 1.34x on A100, with larger wins for LLaMA.
func fig11(scale Scale) (*Table, error) {
	families := []string{"gpt3", "llama", "falcon"}
	platforms := []string{"l4", "a100"}
	sizes := paperSizes()
	if scale == Small {
		families = []string{"gpt3", "llama"}
		platforms = []string{"l4"}
		sizes = smallSizes()
	}
	systems := []baselines.System{baselines.Megatron(), baselines.DeepSpeed(), baselines.Mist()}
	t, err := endToEnd("Figure 11: end-to-end throughput with FlashAttention (samples/s)",
		families, platforms, true, systems, sizes)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: Mist 1.32x avg (up to 1.59x) over Megatron-LM on L4; 1.34x avg (up to 1.72x) on A100; DeepSpeed mostly below Megatron")
	return t, nil
}

// fig12 reproduces Figure 12 (no FlashAttention, GPT-3 only) including
// the Aceso baseline, whose overlap-unaware planner and runtime leave it
// below Megatron-LM in many cases (paper: Mist 1.27x avg over Aceso, up
// to 2.04x).
func fig12(scale Scale) (*Table, error) {
	platforms := []string{"l4", "a100"}
	sizes := paperSizes()
	if scale == Small {
		platforms = []string{"l4"}
		sizes = smallSizes()
	}
	systems := []baselines.System{
		baselines.Megatron(), baselines.DeepSpeed(), baselines.Aceso(), baselines.Mist(),
	}
	t, err := endToEnd("Figure 12: end-to-end throughput without FlashAttention (GPT-3, samples/s)",
		[]string{"gpt3"}, platforms, false, systems, sizes)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: Mist 1.14x avg over Megatron-LM and 1.27x avg (up to 2.04x) over Aceso; Aceso often below Megatron due to missing overlap and sharded DP")
	return t, nil
}

// fig13 reproduces the speedup breakdown (Figure 13): the search space is
// enlarged rung by rung and the measured throughput of the chosen plan is
// normalized to the 3D-parallelism rung. Paper (GPT on 8/16/32 L4):
// 1.00 -> 1.03 (+ZeRO) -> 1.12 (+CKPT) -> 1.19 (+offload) -> 1.28
// (+imbalance-aware pipelining).
func fig13(scale Scale) (*Table, error) {
	type cell struct {
		name  string
		gpus  int
		batch int
	}
	cells := []cell{{"gpt3-7b", 8, 128}, {"gpt3-13b", 16, 256}, {"gpt3-22b", 32, 512}}
	if scale == Small {
		cells = []cell{{"gpt3-2.7b", 4, 32}}
	}
	ladder := core.BreakdownLadder()
	t := &Table{
		Title:  "Figure 13: speedup breakdown over incremental search spaces (relative throughput)",
		Header: []string{"space"},
	}
	for _, c := range cells {
		t.Header = append(t.Header, fmt.Sprintf("%s@%d", c.name, c.gpus))
	}
	t.Header = append(t.Header, "avg")

	results := make([][]float64, len(ladder))
	for ci, c := range cells {
		cl, seq, err := cluster("l4", c.gpus)
		if err != nil {
			return nil, err
		}
		w := plan.Workload{Model: model.MustByName(c.name), Seq: seq, Flash: true, GlobalBatch: c.batch}
		var base float64
		for li, space := range ladder {
			out, err := baselines.Run(w, cl, baselines.System{Name: space.Name, Space: space})
			if err != nil {
				return nil, err
			}
			if results[li] == nil {
				results[li] = make([]float64, len(cells))
			}
			if out.OOM {
				continue
			}
			if li == 0 {
				base = out.Throughput
			}
			if base > 0 {
				results[li][ci] = out.Throughput / base
			}
		}
	}
	for li, space := range ladder {
		row := []interface{}{space.Name}
		sum, n := 0.0, 0
		for _, v := range results[li] {
			if v > 0 {
				row = append(row, fmt.Sprintf("%.2fx", v))
				sum += v
				n++
			} else {
				row = append(row, "OOM")
			}
		}
		if n > 0 {
			row = append(row, fmt.Sprintf("%.2fx", sum/float64(n)))
		} else {
			row = append(row, "-")
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"paper averages: 1.00 / 1.03 / 1.12 / 1.19 / 1.28 (each rung adds options, so the trend must be non-decreasing)")
	return t, nil
}

// fig14 reproduces the layer-count sensitivity study (Figure 14): GPT-3
// with 32-80 layers on 32 L4 GPUs, with and without FlashAttention,
// comparing 3D parallelism, 3D+CKPT tuning, and Mist. Paper: Mist up to
// 1.32x at 80 layers.
func fig14(scale Scale) (*Table, error) {
	layerGrid := []int{32, 48, 64, 80}
	gpus := 32
	batch := 256
	baseModel := "gpt3-22b"
	if scale == Small {
		layerGrid = []int{16, 32}
		gpus = 4
		batch = 32
		baseModel = "gpt3-2.7b"
	}
	ckptOnly := core.ThreeDSpace()
	ckptOnly.Name = "3d+ckpt"
	ckptOnly.TuneCkpt = true
	spaces := []core.Space{core.ThreeDSpace(), ckptOnly, core.MistSpace()}

	t := &Table{
		Title:  "Figure 14: sensitivity to model depth (throughput, relative to 3D)",
		Header: []string{"flash", "#layers", "3d(samples/s)", "3d+ckpt", "mist"},
	}
	for _, flash := range []bool{false, true} {
		for _, layers := range layerGrid {
			cl, seq, err := cluster("l4", gpus)
			if err != nil {
				return nil, err
			}
			cfg := model.MustByName(baseModel).WithLayers(layers)
			w := plan.Workload{Model: cfg, Seq: seq, Flash: flash, GlobalBatch: batch}
			row := []interface{}{flash, layers}
			var base float64
			for _, space := range spaces {
				out, err := baselines.Run(w, cl, baselines.System{Name: space.Name, Space: space})
				if err != nil {
					return nil, err
				}
				if out.OOM {
					row = append(row, "OOM")
					continue
				}
				if base == 0 {
					base = out.Throughput
					row = append(row, out.Throughput)
				} else {
					row = append(row, fmt.Sprintf("%.2fx", out.Throughput/base))
				}
			}
			t.Add(row...)
		}
	}
	t.Notes = append(t.Notes,
		"paper: Mist 1.17-1.32x over 3D; CKPT-only tuning fades as depth grows while the full space keeps the gain")
	return t, nil
}

// fig15 reproduces the global-batch sensitivity study (Figure 15):
// GPT-3 22B on 32 L4 GPUs over batches 256-2048, comparing 3D
// parallelism, Mist without imbalance-aware pipelining, and full Mist.
// Paper: Mist 1.28-1.35x over 3D, with imbalance awareness contributing
// ~1.13x on average.
func fig15(scale Scale) (*Table, error) {
	batches := []int{256, 512, 1024, 2048}
	gpus := 32
	name := "gpt3-22b"
	if scale == Small {
		batches = []int{32, 64}
		gpus = 4
		name = "gpt3-2.7b"
	}
	noImb := core.MistSpace()
	noImb.Name = "mist-no-imbalance"
	noImb.ImbalanceAware = false
	spaces := []core.Space{core.ThreeDSpace(), noImb, core.MistSpace()}

	t := &Table{
		Title:  "Figure 15: sensitivity to global batch size (relative throughput)",
		Header: []string{"batch", "3d(samples/s)", "mist-no-imbalance", "mist"},
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: b}
		row := []interface{}{b}
		var base float64
		for _, space := range spaces {
			out, err := baselines.Run(w, cl, baselines.System{Name: space.Name, Space: space})
			if err != nil {
				return nil, err
			}
			if out.OOM {
				row = append(row, "OOM")
				continue
			}
			if base == 0 {
				base = out.Throughput
				row = append(row, out.Throughput)
			} else {
				row = append(row, fmt.Sprintf("%.2fx", out.Throughput/base))
			}
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Mist 1.28-1.35x over 3D; dropping imbalance awareness costs ~1.13x on average")
	return t, nil
}

// measureBest is a helper used by tests: tune with a space, then measure.
func measureBest(w plan.Workload, cl *hardware.Cluster, space core.Space) (float64, error) {
	tn, err := core.New(w, cl, space)
	if err != nil {
		return 0, err
	}
	res, err := tn.Tune()
	if err != nil {
		return 0, err
	}
	m, err := trainsim.New(w, cl, tn.An).Measure(res.Plan)
	if err != nil {
		return 0, err
	}
	return m.Throughput, nil
}
