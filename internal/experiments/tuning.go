package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/interference"
	"repro/internal/model"
	"repro/internal/opdb"
	"repro/internal/plan"
	"repro/internal/schedule"
	"repro/internal/trainsim"
)

func init() {
	register("fig16", fig16)
	register("accuracy", accuracy)
}

// fig16 reproduces the tuning-time study (Figure 16): wall-clock tuning
// time as optimizations are enabled one by one, plus an estimate of what
// the same sweep would cost with a per-configuration re-simulation
// analyzer (the Proteus/Alpa approach the paper contrasts against:
// ~6 s per configuration vs Mist's batched value substitution).
func fig16(scale Scale) (*Table, error) {
	name, gpus, batch := "gpt3-22b", 32, 512
	if scale == Small {
		name, gpus, batch = "gpt3-2.7b", 4, 32
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}
	w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: batch}

	// The incremental ladder of Figure 16's orange bars.
	threeD := core.ThreeDSpace()
	zero := threeD
	zero.Name = "+zero"
	zero.ZeROLevels = []int{0, 1, 2, 3}
	ckpt := zero
	ckpt.Name = "+ckpt"
	ckpt.TuneCkpt = true
	oo := ckpt
	oo.Name = "+oo"
	oo.TuneOO = true
	gog := oo
	gog.Name = "+go"
	gog.TuneGO = true
	po := gog
	po.Name = "+po"
	po.TuneWO = true
	ao := po
	ao.Name = "+ao"
	ao.TuneAO = true
	ladder := []core.Space{threeD, zero, ckpt, oo, gog, po, ao}

	// Cost of one configuration under a re-simulation analyzer: rebuild
	// the symbolic trace + program for every query (no cache), as a
	// traditional simulator would re-instantiate the model.
	naivePer := naivePerConfigSeconds(w, cl)

	t := &Table{
		Title:  fmt.Sprintf("Figure 16: tuning time, %s on %d GPUs", name, gpus),
		Header: []string{"space", "configs", "tuning-time", "per-config", "naive-analyzer-est"},
	}
	for _, space := range ladder {
		tn, err := core.New(w, cl, space)
		if err != nil {
			return nil, err
		}
		res, err := tn.Tune()
		if err != nil {
			t.Add(space.Name, "-", "-", "-", "-")
			continue
		}
		per := res.Elapsed.Seconds() / math.Max(1, float64(res.Candidates))
		naiveEst := time.Duration(float64(res.Candidates) * naivePer * float64(time.Second))
		t.Add(space.Name, res.Candidates, res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fus", per*1e6), naiveEst.Round(time.Second).String())
	}
	t.Notes = append(t.Notes,
		"paper: Alpa 10106s; Aceso 201s; Mist 92s (3D) to 1083s (full space) for GPT-3 22B on 32 GPUs",
		"naive-analyzer-est extrapolates the same candidate count at a per-configuration re-simulation cost (Proteus-style)")
	return t, nil
}

// naivePerConfigSeconds measures the cost of pricing one configuration
// when the analyzer must re-trace and re-compile per query.
func naivePerConfigSeconds(w plan.Workload, cl *hardware.Cluster) float64 {
	intf := interference.NewModel()
	shape := schedule.StageShape{B: 1, DP: 1, TP: 1, NumStages: 1, StageIdx: 0, GradAccum: 1,
		HasPre: true, HasPost: true}
	k := schedule.Knobs{Layers: w.Model.Layers, Ckpt: w.Model.Layers}
	const trials = 5
	start := time.Now()
	for i := 0; i < trials; i++ {
		an := schedule.NewAnalyzer(w.Model, w.Seq, w.Flash, cl, opdb.New(cl.GPU), intf)
		if _, err := an.Evaluate(shape, k); err != nil {
			return 0.01
		}
	}
	return time.Since(start).Seconds() / trials
}

// accuracy reproduces the §6.6 prediction-accuracy study: sample tuned
// plans across diverse spaces, then compare the symbolic analyzer's
// runtime (Eq. 1) and per-stage memory predictions against the
// discrete-event engine. The paper reports 1.79% mean runtime error and
// 2.10% mean memory error on real hardware.
func accuracy(scale Scale) (*Table, error) {
	name, gpus := "gpt3-2.7b", 8
	batches := []int{16, 32, 64}
	if scale == Full {
		name, gpus = "gpt3-7b", 8
		batches = []int{32, 64, 128, 256}
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}

	ckptOnly := core.ThreeDSpace()
	ckptOnly.Name = "3d+ckpt"
	ckptOnly.TuneCkpt = true
	spaces := []core.Space{core.ThreeDSpace(), ckptOnly, core.DeepSpeedSpace(), core.MistSpace()}

	t := &Table{
		Title:  "Section 6.6: prediction accuracy (analyzer vs execution engine)",
		Header: []string{"plan", "pred-iter(s)", "meas-iter(s)", "time-err", "mem-err(max-stage)"},
	}
	var timeErrs, memErrs []float64
	rng := rand.New(rand.NewSource(17))
	for _, batch := range batches {
		w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: batch}
		for _, space := range spaces {
			tn, err := core.New(w, cl, space)
			if err != nil {
				return nil, err
			}
			res, err := tn.Tune()
			if err != nil {
				continue
			}
			p := res.Plan
			// Perturb offload knobs slightly to sample off-optimum points.
			if rng.Intn(2) == 0 && space.TuneAO {
				for i := range p.Stages {
					p.Stages[i].Knobs.AO = math.Min(1, p.Stages[i].Knobs.AO+0.25)
				}
			}
			pred, err := tn.PredictPlan(p)
			if err != nil {
				return nil, err
			}
			m, err := trainsim.New(w, cl, tn.An).Measure(p)
			if err != nil {
				return nil, err
			}
			te := math.Abs(pred-m.IterTime) / m.IterTime
			timeErrs = append(timeErrs, te)
			maxMe := 0.0
			for si, st := range p.Stages {
				r, err := tn.An.Evaluate(st.Shape, st.Knobs)
				if err != nil {
					return nil, err
				}
				me := math.Abs(r.PeakMem-m.PeakMem[si]) / m.PeakMem[si]
				if me > maxMe {
					maxMe = me
				}
			}
			memErrs = append(memErrs, maxMe)
			t.Add(fmt.Sprintf("%s/B%d/%s", name, batch, space.Name), pred, m.IterTime,
				fmt.Sprintf("%.1f%%", 100*te), fmt.Sprintf("%.1f%%", 100*maxMe))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean runtime error %.2f%%, mean memory error %.2f%% (paper: 1.79%% / 2.10%% vs real GPUs)",
			100*mean(timeErrs), 100*mean(memErrs)),
	)
	return t, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
