// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the reproduction's simulation substrate. Each
// experiment returns a printable Table whose rows mirror the series the
// paper plots; EXPERIMENTS.md records the paper-vs-reproduction
// comparison. The cmd/mistbench binary and the repository-root
// benchmarks both drive this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects the experiment size: Small is a fast subset suitable for
// CI and `go test -bench`; Full is the paper-scale grid.
type Scale int

// Experiment scales.
const (
	Small Scale = iota
	Full
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Func runs one experiment.
type Func func(scale Scale) (*Table, error)

// registry maps experiment names to implementations.
var registry = map[string]Func{}

func register(name string, f Func) { registry[name] = f }

// Names lists available experiments in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes a named experiment.
func Run(name string, scale Scale) (*Table, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return f(scale)
}
