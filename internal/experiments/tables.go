package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/hardware"
	"repro/internal/model"
)

func init() {
	register("table1", table1)
	register("table3", table3)
	register("table4", table4)
}

// table1 renders the capability matrix of Table 1 directly from the
// implemented search spaces, so the table cannot drift from the code.
func table1(Scale) (*Table, error) {
	systems := []baselines.System{
		baselines.Megatron(), baselines.DeepSpeed(), baselines.Aceso(),
		baselines.Uniform(), baselines.Mist(),
	}
	t := &Table{
		Title: "Table 1: capability comparison (derived from the implemented spaces)",
		Header: []string{"system", "DP/TP/PP", "offload P", "offload G", "offload O", "offload A",
			"ZeRO-2/3", "flexible CKPT", "overlap-aware", "imbalance-aware", "per-stage"},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, sys := range systems {
		sp := sys.Space
		zero23 := false
		for _, z := range sp.ZeROLevels {
			if z >= 2 {
				zero23 = true
			}
		}
		t.Add(sys.Name, "yes", yn(sp.TuneWO), yn(sp.TuneGO), yn(sp.TuneOO), yn(sp.TuneAO),
			yn(zero23), yn(sp.TuneCkpt), yn(sp.OverlapAware), yn(sp.ImbalanceAware),
			yn(!sp.UniformStages))
	}
	t.Notes = append(t.Notes,
		"paper Table 1: only Mist supports all offload kinds, ZeRO-2/3, and tunes everything per stage")
	return t, nil
}

// table3 prints the modelled hardware platforms (Table 3).
func table3(Scale) (*Table, error) {
	t := &Table{
		Title: "Table 3: hardware platforms (as modelled)",
		Header: []string{"platform", "GPU", "memory", "fp16 TFLOPS", "HBM GB/s",
			"intra-node", "inter-node", "host link"},
	}
	for _, p := range []struct {
		name string
		cl   *hardware.Cluster
	}{
		{"GCP G2 (PCIe)", hardware.L4Cluster(4, 8)},
		{"AWS p4d (NVLink)", hardware.A100Cluster(4, 8)},
	} {
		g := p.cl.GPU
		t.Add(p.name, g.Name,
			fmt.Sprintf("%d GB", g.MemoryBytes>>30),
			fmt.Sprintf("%.0f", g.PeakFP16FLOPS/1e12),
			fmt.Sprintf("%.0f", g.MemBandwidth/1e9),
			linkDesc(p.cl.IntraNode), linkDesc(p.cl.InterNode), linkDesc(p.cl.HostLink))
	}
	return t, nil
}

func linkDesc(l hardware.Link) string {
	return fmt.Sprintf("%s@%.1fGB/s", l.Name, l.Bandwidth/1e9)
}

// table4 prints the workload grid (Table 4) with derived parameter
// counts, confirming the catalog matches the paper's size labels.
func table4(Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 4: workloads (catalog-derived)",
		Header: []string{"model", "family", "layers", "hidden", "heads", "ffn", "vocab", "params"},
	}
	for _, name := range model.Names() {
		if strings.HasSuffix(name, "-40b") {
			continue // used only by the §6.3 discussion
		}
		c := model.MustByName(name)
		t.Add(name, c.Family.String(), c.Layers, c.Hidden, c.Heads, c.FFNHidden, c.Vocab,
			fmt.Sprintf("%.1fB", float64(c.TotalParams())/1e9))
	}
	t.Notes = append(t.Notes,
		"paper: GPT/LLaMA/Falcon at {1.3, 2.6, 6.7, 13, 22}B; global batch 32-512; seq 2048 (L4) / 4096 (A100)")
	return t, nil
}
