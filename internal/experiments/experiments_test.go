package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-hetero", "ablation-interference", "ablation-pareto", "ablation-schedule", "ablation-solver",
		"accuracy", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig2", "fig3", "fig5",
		"table1", "table3", "table4",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("experiments: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments: %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Small); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.Add("x", 1.5)
	tb.Notes = append(tb.Notes, "hello")
	s := tb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "1.500", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig5Small(t *testing.T) {
	tb, err := Run("fig5", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("fig5 small: %d rows", len(tb.Rows))
	}
}

func TestFig2Small(t *testing.T) {
	tb, err := Run("fig2", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("fig2: %d rows\n%s", len(tb.Rows), tb)
	}
	t.Log("\n" + tb.String())
	// The all-tuned row must carry the largest speedup among tuned rows.
	parse := func(s string) float64 {
		if !strings.HasSuffix(s, "x") {
			return 0
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			return 0
		}
		return v
	}
	var full, best float64
	for _, r := range tb.Rows {
		v := parse(r[2])
		if r[0] == "mist" {
			full = v
		}
		if v > best {
			best = v
		}
	}
	if full < best-1e-9 {
		t.Errorf("all-tuned speedup %.2f below best single-technique %.2f", full, best)
	}
}
