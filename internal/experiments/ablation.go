package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/interference"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/trainsim"
)

func init() {
	register("ablation-pareto", ablationPareto)
	register("ablation-solver", ablationSolver)
	register("ablation-interference", ablationInterference)
	register("ablation-schedule", ablationSchedule)
	register("ablation-hetero", ablationHetero)
}

// ablationHetero compares uniform per-stage device splits against the
// paper's heterogeneous (n_i, m_i) assignment: the device-aware solver
// can give the embedding/head stages more or fewer GPUs and explore
// non-divisor pipeline depths.
func ablationHetero(scale Scale) (*Table, error) {
	name, gpus, batch := "gpt3-7b", 8, 64
	if scale == Small {
		name, gpus, batch = "gpt3-2.7b", 4, 16
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}
	w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: batch}
	t := &Table{
		Title:  "Ablation: uniform vs heterogeneous per-stage device assignment",
		Header: []string{"assignment", "predicted-iter(s)", "throughput", "S", "devices-per-stage", "tuning-time"},
	}
	for _, hetero := range []bool{false, true} {
		space := core.MistSpace()
		space.HeterogeneousDevices = hetero
		tn, err := core.New(w, cl, space)
		if err != nil {
			return nil, err
		}
		res, err := tn.Tune()
		if err != nil {
			return nil, err
		}
		m, err := trainsim.New(w, cl, tn.An).Measure(res.Plan)
		if err != nil {
			return nil, err
		}
		devs := ""
		for i, st := range res.Plan.Stages {
			if i > 0 {
				devs += "/"
			}
			devs += fmt.Sprint(st.Shape.Devices())
		}
		label := "uniform"
		if hetero {
			label = "heterogeneous"
		}
		t.Add(label, res.Predicted, m.Throughput, res.Plan.NumStages(), devs,
			res.Elapsed.Round(time.Millisecond).String())
	}
	t.Notes = append(t.Notes,
		"heterogeneous assignment is a superset: its objective can only improve, at higher tuning cost")
	return t, nil
}

// ablationPareto studies the Pareto-frontier sample count (the f index
// budget of Eq. 3): too few samples lose (t, d) trade-off points and can
// mis-partition the pipeline; beyond a handful, returns diminish. This
// validates the design choice called out in DESIGN.md.
func ablationPareto(scale Scale) (*Table, error) {
	name, gpus, batch := "gpt3-7b", 8, 128
	if scale == Small {
		name, gpus, batch = "gpt3-2.7b", 4, 32
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}
	w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: batch}
	t := &Table{
		Title:  "Ablation: Pareto frontier sample count K (Eq. 3/4)",
		Header: []string{"K", "predicted-iter(s)", "measured-throughput", "tuning-time"},
	}
	for _, k := range []int{1, 2, 3, 5, 8} {
		space := core.MistSpace()
		space.ParetoSamples = k
		tn, err := core.New(w, cl, space)
		if err != nil {
			return nil, err
		}
		res, err := tn.Tune()
		if err != nil {
			t.Add(k, "infeasible", "-", "-")
			continue
		}
		m, err := trainsim.New(w, cl, tn.An).Measure(res.Plan)
		if err != nil {
			return nil, err
		}
		t.Add(k, res.Predicted, m.Throughput, res.Elapsed.Round(time.Millisecond).String())
	}
	t.Notes = append(t.Notes,
		"K=1 keeps only one (t,d) point per frontier and can lose the plan that hides deltas in bubbles")
	return t, nil
}

// ablationSolver compares the three inter-stage solvers (exact DP,
// MILP, brute force) on objective value and wall-clock time, validating
// that the default DP is a lossless speedup over the paper's MILP.
func ablationSolver(scale Scale) (*Table, error) {
	name, gpus, batch := "gpt3-7b", 8, 64
	if scale == Small {
		name, gpus, batch = "gpt3-1.3b", 4, 16
	}
	cl, seq, err := cluster("l4", gpus)
	if err != nil {
		return nil, err
	}
	w := plan.Workload{Model: model.MustByName(name), Seq: seq, Flash: true, GlobalBatch: batch}
	space := core.DeepSpeedSpace() // mid-sized space keeps brute force tractable
	base, err := core.New(w, cl, space)
	if err != nil {
		return nil, err
	}
	solvers := []struct {
		name string
		tn   *core.Tuner
	}{
		{"dp (default)", base},
		{"milp (paper)", &core.Tuner{W: w, Cluster: cl, An: base.An, Space: space, UseMILP: true}},
		{"brute force", &core.Tuner{W: w, Cluster: cl, An: base.An, Space: space, Exhaustive: true}},
	}
	t := &Table{
		Title:  "Ablation: inter-stage solver (same optimum, different cost)",
		Header: []string{"solver", "objective(s)", "tuning-time"},
	}
	for _, s := range solvers {
		res, err := s.tn.Tune()
		if err != nil {
			return nil, err
		}
		t.Add(s.name, res.Predicted, res.Elapsed.Round(time.Millisecond).String())
	}
	return t, nil
}

// ablationInterference quantifies what overlap/interference awareness is
// worth in prediction quality: the fitted Algorithm 1 model vs assuming
// perfect overlap (max of channels) vs full serialization (sum), each
// measured against the fluid oracle.
func ablationInterference(scale Scale) (*Table, error) {
	samples := 200
	if scale == Full {
		samples = 2000
	}
	t := &Table{
		Title:  "Ablation: interference model vs naive composition (mean |rel err| vs fluid oracle)",
		Header: []string{"platform", "algorithm-1(fitted)", "perfect-overlap(max)", "serialized(sum)"},
	}
	for _, p := range []struct {
		name  string
		fluid *interference.Fluid
	}{
		{"pcie(l4)", interference.PCIeFluid()},
		{"nvlink(a100)", interference.NVLinkFluid()},
	} {
		fitted := interference.Fit(p.fluid, 24, rand.New(rand.NewSource(7)))
		perfect := interference.NewModel() // all factors 1 => max
		evalRng := rand.New(rand.NewSource(99))
		fittedErr := interference.MeanRelError(fitted, p.fluid, samples, evalRng)
		evalRng = rand.New(rand.NewSource(99))
		perfectErr := interference.MeanRelError(perfect, p.fluid, samples, evalRng)
		evalRng = rand.New(rand.NewSource(99))
		sumErr := meanRelErrSerialized(p.fluid, samples, evalRng)
		t.Add(p.name,
			fmt.Sprintf("%.1f%%", 100*fittedErr),
			fmt.Sprintf("%.1f%%", 100*perfectErr),
			fmt.Sprintf("%.1f%%", 100*sumErr))
	}
	t.Notes = append(t.Notes,
		"Shortcoming #1 in numbers: both naive compositions mis-predict overlapped regions; the fitted model tracks the oracle")
	return t, nil
}

// meanRelErrSerialized measures the serialized (sum of channels)
// composition against the fluid oracle.
func meanRelErrSerialized(oracle *interference.Fluid, samplesPerCombo int, rng *rand.Rand) float64 {
	total, n := 0.0, 0
	for _, mask := range interference.AllCombinations() {
		for i := 0; i < samplesPerCombo; i++ {
			var x interference.Times
			sum := 0.0
			for ch := interference.Channel(0); ch < interference.NumChannels; ch++ {
				if mask.Has(ch) {
					v := 0.1 + rng.Float64()*9.9
					x[ch] = v
					sum += v
				}
			}
			truth := oracle.Run(x)
			total += abs(sum-truth) / truth
			n++
		}
	}
	return total / float64(n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ablationSchedule compares 1F1B (Mist's schedule) against GPipe on the
// same per-stage costs: similar makespan, very different peak stash
// requirements (GPipe holds all G microbatches in flight).
func ablationSchedule(scale Scale) (*Table, error) {
	gs := []int{4, 8, 16, 32}
	if scale == Small {
		gs = []int{4, 8}
	}
	t := &Table{
		Title:  "Ablation: 1F1B vs GPipe schedule (uniform 4-stage pipeline)",
		Header: []string{"G", "1f1b-makespan", "gpipe-makespan", "1f1b-inflight(stage0)", "gpipe-inflight"},
	}
	for _, g := range gs {
		stages := make([]pipeline.MicrobatchCost, 4)
		for i := range stages {
			stages[i] = pipeline.MicrobatchCost{Fwd: 1, Bwd: 2, FirstExtra: 0.3, LastExtra: 0.2}
		}
		m1, err := pipeline.Playback1F1B(stages, g)
		if err != nil {
			return nil, err
		}
		mg, err := pipeline.PlaybackGPipe(stages, g)
		if err != nil {
			return nil, err
		}
		inflight1 := len(stages)
		if g < inflight1 {
			inflight1 = g
		}
		t.Add(g, m1, mg, inflight1, pipeline.GPipeInFlight(g))
	}
	t.Notes = append(t.Notes,
		"1F1B bounds in-flight stashes by min(S, G) per stage; GPipe scales them with G, which is why all systems in the paper schedule 1F1B")
	return t, nil
}
