package mist

// One benchmark per table/figure of the paper's evaluation (§6). Each
// benchmark regenerates the corresponding experiment at the fast Small
// scale and reports the headline series as custom metrics; run
// `cmd/mistbench -exp <name> [-full]` for the printable tables and the
// paper-scale grids, and see EXPERIMENTS.md for recorded results.
//
// Benchmarks intentionally measure whole experiments (tune + execute):
// use -benchtime=1x for a single regeneration pass.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// runExperiment drives one named experiment b.N times.
func runExperiment(b *testing.B, name string) *experiments.Table {
	b.Helper()
	var tb *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = experiments.Run(name, experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tb.String())
	return tb
}

// speedupMetric extracts "<x>x" cells from a column and reports the mean
// as a custom benchmark metric.
func speedupMetric(b *testing.B, tb *experiments.Table, col int, metric string) {
	b.Helper()
	sum, n := 0.0, 0
	for _, row := range tb.Rows {
		if col >= len(row) || !strings.HasSuffix(row[col], "x") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

// BenchmarkFig02Motivation regenerates Figure 2: tuning each memory
// optimization jointly with parallelism for GPT-3 2.7B on 4 L4 GPUs.
func BenchmarkFig02Motivation(b *testing.B) {
	tb := runExperiment(b, "fig2")
	speedupMetric(b, tb, 2, "speedup-vs-fullckpt")
}

// BenchmarkFig03Comprehensive regenerates Figure 3: comprehensive
// co-optimization vs checkpoint-only tuning for GPT-3 7B on 8 L4 GPUs.
func BenchmarkFig03Comprehensive(b *testing.B) {
	tb := runExperiment(b, "fig3")
	speedupMetric(b, tb, 2, "speedup-vs-3d")
}

// BenchmarkFig05SearchSpace regenerates Figure 5: exact configuration
// counts as optimizations are added.
func BenchmarkFig05SearchSpace(b *testing.B) {
	runExperiment(b, "fig5")
}

// BenchmarkFig11EndToEnd regenerates Figure 11: end-to-end throughput
// with FlashAttention vs Megatron-LM and DeepSpeed.
func BenchmarkFig11EndToEnd(b *testing.B) {
	tb := runExperiment(b, "fig11")
	speedupMetric(b, tb, len(tb.Header)-1, "mist-speedup")
}

// BenchmarkFig12NoFlash regenerates Figure 12: end-to-end throughput
// without FlashAttention, including the Aceso baseline.
func BenchmarkFig12NoFlash(b *testing.B) {
	tb := runExperiment(b, "fig12")
	speedupMetric(b, tb, len(tb.Header)-1, "mist-speedup")
}

// BenchmarkFig13Breakdown regenerates Figure 13: the incremental
// search-space ladder (3D -> +ZeRO -> +CKPT -> +offload -> +imbalance).
func BenchmarkFig13Breakdown(b *testing.B) {
	tb := runExperiment(b, "fig13")
	speedupMetric(b, tb, len(tb.Header)-1, "ladder-avg")
}

// BenchmarkFig14LayerSensitivity regenerates Figure 14: sensitivity to
// model depth with and without FlashAttention.
func BenchmarkFig14LayerSensitivity(b *testing.B) {
	tb := runExperiment(b, "fig14")
	speedupMetric(b, tb, 4, "mist-vs-3d")
}

// BenchmarkFig15BatchSensitivity regenerates Figure 15: sensitivity to
// the global batch size, isolating imbalance-aware pipelining.
func BenchmarkFig15BatchSensitivity(b *testing.B) {
	tb := runExperiment(b, "fig15")
	speedupMetric(b, tb, 3, "mist-vs-3d")
}

// BenchmarkFig16TuningTime regenerates Figure 16: tuning time as the
// search space grows, against a per-configuration re-simulation
// estimate.
func BenchmarkFig16TuningTime(b *testing.B) {
	runExperiment(b, "fig16")
}

// BenchmarkSec66PredictionAccuracy regenerates the §6.6 study: symbolic
// analyzer predictions vs the execution engine.
func BenchmarkSec66PredictionAccuracy(b *testing.B) {
	runExperiment(b, "accuracy")
}

// benchWorkload is the cached-vs-uncached comparison workload: a deep
// pipeline (8 GPUs) where middle stages with equal in-flight depth
// enumerate canonically identical candidate grids.
func benchWorkload() (Workload, *Cluster) {
	return Workload{Model: Model("gpt3-2.7b"), Seq: 2048, Flash: true, GlobalBatch: 8}, L4Cluster(8)
}

// benchTuneCold runs a cold full-space search per iteration, optionally
// with the evaluation memo cache disabled, and reports cache metrics.
func benchTuneCold(b *testing.B, noCache bool) {
	w, cl := benchWorkload()
	var res *core.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn, err := core.New(w, cl, core.MistSpace())
		if err != nil {
			b.Fatal(err)
		}
		tn.NoCache = noCache
		res, err = tn.Tune()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Candidates), "candidates")
	if !noCache {
		b.ReportMetric(res.CacheHitRate(), "hit-rate")
		b.ReportMetric(float64(res.EvalCacheMisses), "unique-evals")
	}
}

// BenchmarkTuneMemoizedCold measures a full Mist-space search with the
// evaluation cache on: canonically repeated (shape, knobs) points across
// stages and (S, G) pairs are answered from the memo store, so the
// analyzer prices only the unique-evals metric's worth of candidates
// (the rest of the candidates metric is served as hits).
func BenchmarkTuneMemoizedCold(b *testing.B) { benchTuneCold(b, false) }

// BenchmarkTuneUncached is the same search with memoization disabled —
// every candidate goes to the symbolic analyzer (the seed's behavior).
// The chosen plans are identical either way (core's
// TestCacheOnOffIdenticalPlans).
func BenchmarkTuneUncached(b *testing.B) { benchTuneCold(b, true) }

// BenchmarkTuneMemoizedWarm is the serving scenario (cmd/mistserve):
// re-searching a workload whose evaluations are already memoized. Every
// candidate is a cache hit, so this bounds the steady-state cost of
// repeated tuning traffic; compare against BenchmarkTuneUncached for
// the cached-vs-uncached speedup.
func BenchmarkTuneMemoizedWarm(b *testing.B) {
	w, cl := benchWorkload()
	tn, err := core.New(w, cl, core.MistSpace())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tn.Tune(); err != nil { // warm the memo store
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = tn.Tune()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CacheHitRate(), "hit-rate")
}
