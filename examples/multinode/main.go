// Multinode: tune the same GPT-3 7B fine-tuning job on two very
// different 16-GPU platforms — PCIe-attached L4s (memory- and
// bandwidth-constrained) and NVLink A100s — and compare the plans Mist
// chooses. On the constrained platform the tuner leans on memory
// optimizations to avoid deep pipelines; on the NVLink platform it can
// afford tensor parallelism and lighter memory tricks (paper §6.2,
// "Discussion on the hardware").
//
//	go run ./examples/multinode
package main

import (
	"fmt"
	"log"

	mist "repro"
)

func main() {
	log.SetFlags(0)
	type platform struct {
		name string
		cl   *mist.Cluster
		seq  int
	}
	platforms := []platform{
		{"16x L4 (PCIe, 24 GB)", mist.L4Cluster(16), 2048},
		{"16x A100 (NVLink, 40 GB)", mist.A100Cluster(16), 4096},
	}
	for _, p := range platforms {
		w := mist.Workload{
			Model:       mist.Model("gpt3-7b"),
			Seq:         p.seq,
			Flash:       true,
			GlobalBatch: 128,
		}
		fmt.Printf("=== %s, seq %d ===\n", p.name, p.seq)
		res, err := mist.Tune(w, p.cl)
		if err != nil {
			log.Fatal(err)
		}
		m, err := mist.Simulate(w, p.cl, res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Plan)
		fmt.Printf("throughput %.2f samples/s, bubble %.1f%%, stage-0 peak %.1f GB / %.1f GB\n\n",
			m.Throughput, 100*m.Bubble, m.PeakMem[0]/(1<<30), p.cl.MemoryBudget()/(1<<30))
	}
}
