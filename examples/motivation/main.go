// Motivation: the paper's Figure 2 story. Training GPT-3 2.7B on four
// 24 GB L4 GPUs, plain parallelism tuning hits the memory wall; each
// memory-footprint-reduction technique, co-tuned with parallelism, buys
// throughput in a different way (less recomputation, fewer pipeline
// stages, larger microbatches); co-tuning all of them together wins.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	mist "repro"
)

func main() {
	log.SetFlags(0)
	w := mist.Workload{
		Model:       mist.Model("gpt3-2.7b"),
		Seq:         4096,
		Flash:       true,
		GlobalBatch: 8,
	}
	cl := mist.L4Cluster(4)

	ckptTuned := mist.ThreeDSpace()
	ckptTuned.Name = "parallelism + CKPT tuning"
	ckptTuned.TuneCkpt = true

	offloadTuned := mist.ThreeDSpace()
	offloadTuned.Name = "parallelism + offloading tuning"
	offloadTuned.TuneWO, offloadTuned.TuneGO = true, true
	offloadTuned.TuneOO, offloadTuned.TuneAO = true, true

	zeroTuned := mist.DeepSpeedSpace()
	zeroTuned.Name = "parallelism + ZeRO tuning"

	all := mist.MistSpace()
	all.Name = "everything co-tuned (Mist)"

	spaces := []mist.Space{mist.ThreeDSpace(), ckptTuned, zeroTuned, offloadTuned, all}

	var base float64
	for _, space := range spaces {
		res, err := mist.TuneWithSpace(w, cl, space)
		if err != nil {
			fmt.Printf("%-36s OOM everywhere\n", space.Name)
			continue
		}
		m, err := mist.Simulate(w, cl, res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = m.Throughput
		}
		fmt.Printf("%-36s %6.2f samples/s  (%.2fx)\n", space.Name, m.Throughput, m.Throughput/base)
	}
	fmt.Println("\npaper (Figure 2): CKPT 1.22x, ZeRO 1.25x, offloading 1.16x, all co-tuned 1.30x")
}
