// MoE: tune a mixture-of-experts model — the extension sketched in the
// paper's future-work discussion (§8). Experts are sharded across the
// data-parallel group (expert parallelism), each layer gains two
// all-to-all exchanges, and the execution engine samples per-microbatch
// routing imbalance around the capacity factor while the analyzer prices
// the average.
//
//	go run ./examples/moe
package main

import (
	"fmt"
	"log"

	mist "repro"
)

func main() {
	log.SetFlags(0)
	cl := mist.L4Cluster(4)

	dense := mist.Model("gpt3-1.3b")
	moe := mist.MoEModel("gpt3-1.3b", 8, 2) // 8 experts, top-2 routing

	for _, cfg := range []mist.ModelConfig{dense, moe} {
		w := mist.Workload{Model: cfg, Seq: 2048, Flash: true, GlobalBatch: 16}
		res, err := mist.Tune(w, cl)
		if err != nil {
			log.Fatal(err)
		}
		m, err := mist.Simulate(w, cl, res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%.1fB params) ===\n", cfg.Name, float64(cfg.TotalParams())/1e9)
		fmt.Println(res.Plan)
		fmt.Printf("predicted %.3fs, measured %.3fs (%.2f samples/s), stage-0 peak %.1f GB\n\n",
			res.Predicted, m.IterTime, m.Throughput, m.PeakMem[0]/(1<<30))
	}
	fmt.Println("note: the MoE variant carries ~4x the parameters at ~2.5x the FLOPs;")
	fmt.Println("expert parallelism keeps it trainable on the same 4 GPUs, at lower throughput.")
}
