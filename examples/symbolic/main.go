// Symbolic: the educational use of Mist's symbolic analysis system
// highlighted in the paper's artifact appendix (§A.5): "it supports
// tracing, which generates a corresponding symbolic computational graph
// ... helping users understand shape propagation and how each input
// dimension is utilized."
//
// This example traces one GPT-3 transformer block, prints its
// closed-form memory expressions in the microbatch symbol b, and shows
// how a single compiled program answers many what-if questions at once
// (the batched value substitution behind Mist's tuning speed).
//
//	go run ./examples/symbolic
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/symbolic"
)

func main() {
	log.SetFlags(0)
	cfg := model.MustByName("gpt3-2.7b")
	seq := 2048

	for _, tp := range []int{1, 2} {
		for _, flash := range []bool{true, false} {
			g, err := graph.TraceLayer(cfg, seq, tp, flash)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("=== %s, seq %d, tp=%d, flash=%v: %d traced ops ===\n",
				cfg.Name, seq, tp, flash, g.NumOps())
			fmt.Printf("saved activations (bytes):  %s\n", g.SavedActivationBytes())
			fmt.Printf("checkpoint boundary:        %s\n", g.BoundaryBytes())
			fmt.Printf("backward liveness peak:     %s\n\n", g.PeakBackwardBytes())
		}
	}

	// One symbolic trace, many configurations: compile the stash
	// expression once and sweep the microbatch size.
	g, err := graph.TraceLayer(cfg, seq, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	prog := symbolic.MustCompile(
		[]*symbolic.Expr{g.SavedActivationBytes(), g.PeakBackwardBytes()},
		[]string{graph.BSymbol},
	)
	fmt.Println("batched substitution over microbatch sizes (GB per layer):")
	fmt.Printf("%4s  %12s  %12s\n", "b", "stash", "bwd peak")
	for _, b := range []float64{1, 2, 4, 8, 16} {
		out := prog.EvalFrame([]float64{b}, nil, nil)
		fmt.Printf("%4.0f  %12.3f  %12.3f\n", b, out[0]/(1<<30), out[1]/(1<<30))
	}
}
