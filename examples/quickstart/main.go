// Quickstart: tune a GPT-3 2.7B training job on 4 simulated NVIDIA L4
// GPUs with the full Mist search space, then execute the chosen plan on
// the discrete-event engine and compare the prediction with the
// measurement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mist "repro"
)

func main() {
	log.SetFlags(0)

	// A training job: model, sequence length, FlashAttention, and the
	// global batch size (samples per optimizer step).
	w := mist.Workload{
		Model:       mist.Model("gpt3-2.7b"),
		Seq:         2048,
		Flash:       true,
		GlobalBatch: 32,
	}
	// The paper's PCIe platform: one node of 4x 24 GB L4 GPUs.
	cl := mist.L4Cluster(4)

	// Tune: jointly search parallelism (DP/TP/PP, microbatch, gradient
	// accumulation) and memory optimizations (checkpointing, ZeRO,
	// offloading ratios) for the highest-throughput plan that fits.
	res, err := mist.Tune(w, cl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuned plan:")
	fmt.Println(res.Plan)
	fmt.Printf("\npredicted: %.3fs per iteration (%.2f samples/s)\n",
		res.Predicted, res.PredThroughput)
	fmt.Printf("explored %d candidates over %d (S,G) pairs in %s\n",
		res.Candidates, res.SGPairs, res.Elapsed.Round(1e6))

	// Execute the plan on the simulated cluster.
	m, err := mist.Simulate(w, cl, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured: %.3fs per iteration (%.2f samples/s), pipeline bubble %.1f%%\n",
		m.IterTime, m.Throughput, 100*m.Bubble)
	for i, pm := range m.PeakMem {
		fmt.Printf("stage %d peak memory: %.2f GB of %.2f GB budget\n",
			i, pm/(1<<30), cl.MemoryBudget()/(1<<30))
	}
}
