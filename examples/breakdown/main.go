// Breakdown: the Figure 13 ablation ladder. Starting from 3D-parallelism
// tuning (the Megatron-LM search space), each Mist feature is enabled in
// turn — ZeRO-2/3, flexible per-stage checkpointing, fractional
// offloading, imbalance-aware pipelining — and the measured throughput
// of the best plan in each space is reported relative to the first rung.
//
//	go run ./examples/breakdown
package main

import (
	"fmt"
	"log"

	mist "repro"
)

func main() {
	log.SetFlags(0)
	w := mist.Workload{
		Model:       mist.Model("gpt3-2.7b"),
		Seq:         2048,
		Flash:       true,
		GlobalBatch: 64,
	}
	cl := mist.L4Cluster(8)

	fmt.Printf("workload: %s on 8x L4, global batch %d\n\n", w.Model.Name, w.GlobalBatch)
	var base float64
	for _, space := range mist.BreakdownLadder() {
		res, err := mist.TuneWithSpace(w, cl, space)
		if err != nil {
			fmt.Printf("%-24s infeasible\n", space.Name)
			continue
		}
		m, err := mist.Simulate(w, cl, res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = m.Throughput
		}
		fmt.Printf("%-24s %6.2f samples/s  (%.2fx)   best plan: G=%d S=%d\n",
			space.Name, m.Throughput, m.Throughput/base,
			res.Plan.GradAccum, res.Plan.NumStages())
	}
	fmt.Println("\npaper (Figure 13, averaged): 1.00 / 1.03 / 1.12 / 1.19 / 1.28")
}
