package mist

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// The cold-search determinism contract: for a fixed workload, cluster and
// space, the tuner returns one exact plan, independent of caching,
// scheduling, incumbent pruning, or any other speed machinery. The catalog
// below crosses the tuner's code paths (full Mist space, restricted
// baseline spaces, the serialize/overlap-unaware path, the uniform-stage
// heuristic, heterogeneous device assignment, and both hardware platforms)
// and pins every chosen plan byte-for-byte in testdata/golden_plans.json.
//
// Regenerate with `go test -run TestGoldenColdPlans -update .` — only when
// a change is *supposed* to alter tuned plans, which warrants a review of
// every diff line.

type goldenCase struct {
	Name     string
	Model    string
	Seq      int
	Flash    bool
	Batch    int
	GPUs     int
	Platform string // "l4" or "a100"
	Space    string
}

func goldenCatalog() []goldenCase {
	return []goldenCase{
		{Name: "bench-mist-l4x8", Model: "gpt3-2.7b", Seq: 2048, Flash: true, Batch: 8, GPUs: 8, Platform: "l4", Space: "mist"},
		{Name: "small-mist-l4x2", Model: "gpt3-1.3b", Seq: 2048, Flash: true, Batch: 8, GPUs: 2, Platform: "l4", Space: "mist"},
		{Name: "mist-a100x4", Model: "gpt3-2.7b", Seq: 2048, Flash: true, Batch: 8, GPUs: 4, Platform: "a100", Space: "mist"},
		{Name: "deepspeed-l4x4", Model: "gpt3-2.7b", Seq: 2048, Flash: true, Batch: 8, GPUs: 4, Platform: "l4", Space: "deepspeed"},
		{Name: "aceso-l4x4", Model: "gpt3-2.7b", Seq: 2048, Flash: true, Batch: 8, GPUs: 4, Platform: "l4", Space: "aceso"},
		{Name: "threed-l4x4", Model: "gpt3-1.3b", Seq: 2048, Flash: false, Batch: 16, GPUs: 4, Platform: "l4", Space: "3d"},
		{Name: "uniform-l4x4", Model: "gpt3-2.7b", Seq: 2048, Flash: true, Batch: 8, GPUs: 4, Platform: "l4", Space: "uniform"},
		{Name: "hetero-l4x4", Model: "gpt3-1.3b", Seq: 2048, Flash: true, Batch: 8, GPUs: 4, Platform: "l4", Space: "hetero"},
	}
}

func goldenSpace(t *testing.T, name string) Space {
	t.Helper()
	switch name {
	case "mist":
		return MistSpace()
	case "deepspeed":
		return DeepSpeedSpace()
	case "aceso":
		return AcesoSpace()
	case "3d":
		return ThreeDSpace()
	case "uniform":
		return UniformSpace()
	case "hetero":
		s := MistSpace()
		s.Name = "hetero"
		s.HeterogeneousDevices = true
		return s
	default:
		t.Fatalf("unknown golden space %q", name)
		return Space{}
	}
}

// goldenPlan is the recorded outcome of one catalog entry. Predicted is
// the Eq. 2 objective; both it and every plan field must reproduce
// exactly (JSON round-trips float64 losslessly).
type goldenPlan struct {
	Plan      *Plan
	Predicted float64
}

func (gc goldenCase) run(t *testing.T) goldenPlan {
	t.Helper()
	w := Workload{Model: Model(gc.Model), Seq: gc.Seq, Flash: gc.Flash, GlobalBatch: gc.Batch}
	var cl *Cluster
	switch gc.Platform {
	case "a100":
		cl = A100Cluster(gc.GPUs)
	default:
		cl = L4Cluster(gc.GPUs)
	}
	res, err := TuneWithSpace(w, cl, goldenSpace(t, gc.Space))
	if err != nil {
		t.Fatalf("%s: %v", gc.Name, err)
	}
	return goldenPlan{Plan: res.Plan, Predicted: res.Predicted}
}

func TestGoldenColdPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("cold catalog sweep: skipped with -short")
	}
	path := filepath.Join("testdata", "golden_plans.json")
	got := make(map[string]goldenPlan)
	for _, gc := range goldenCatalog() {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			got[gc.Name] = gc.run(t)
		})
	}
	if t.Failed() {
		return
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %d plans to %s", len(got), path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: %v (regenerate with -update)", err)
	}
	want := make(map[string]goldenPlan)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("golden: corrupt %s: %v", path, err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("golden: case %s missing from %s (regenerate with -update)", name, path)
			continue
		}
		if g.Predicted != w.Predicted {
			t.Errorf("golden %s: predicted objective %v, want %v", name, g.Predicted, w.Predicted)
		}
		if !reflect.DeepEqual(g.Plan, w.Plan) {
			t.Errorf("golden %s: plan drifted\n got: %+v\nwant: %+v", name, g.Plan, w.Plan)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden: recorded case %s no longer in catalog", name)
		}
	}
}
