// Command mistserve runs the Mist tuning service: a concurrent HTTP/JSON
// API over the auto-tuner and the execution engine, with a plan cache
// keyed by (workload, cluster, space) so repeated requests are answered
// instantly. It shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight tuning requests.
//
// Example session:
//
//	mistserve -addr :8080 &
//	curl -s localhost:8080/tune -d '{"model":"gpt3-2.7b","gpus":4,"batch":32}'
//	curl -s localhost:8080/simulate -d '{"model":"gpt3-2.7b","gpus":4,"batch":32}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistserve: ")
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		grace = flag.Duration("grace", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("serving on %s (POST /tune, POST /simulate, GET /healthz, GET /stats)", *addr)
	err := serve.New().ListenAndServe(ctx, *addr, *grace)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
