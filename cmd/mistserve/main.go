// Command mistserve runs the Mist tuning service: a concurrent HTTP/JSON
// API over the auto-tuner and the execution engine, with a plan cache
// keyed by (workload, cluster, space) so repeated requests are answered
// instantly, an async job queue for batch tuning, and (with -store-dir)
// a durable plan store that survives restarts and warm-starts near-miss
// searches. It shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight tuning requests.
//
// Example session:
//
//	mistserve -addr :8080 -store-dir /var/lib/mist/plans &
//	curl -s localhost:8080/tune -d '{"model":"gpt3-2.7b","gpus":4,"batch":32}'
//	curl -s localhost:8080/jobs -d '{"jobs":[{"model":"gpt3-2.7b","gpus":4,"batch":64},{"model":"gpt3-2.7b","gpus":8,"batch":64,"priority":1}]}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		grace       = flag.Duration("grace", 30*time.Second, "graceful-shutdown drain timeout")
		storeDir    = flag.String("store-dir", "", "durable plan-store directory (empty: in-memory only)")
		cacheCap    = flag.Int("cache-cap", 0, "in-memory plan-cache capacity (0: default 1024)")
		workers     = flag.Int("workers", 0, "async job worker pool size (0: default 2)")
		maxInflight = flag.Int("max-inflight", 0, "concurrently executing requests per endpoint class (0: GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission wait-queue and async job-queue bound; overflow answers 429 (0: default 256)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline, propagated into running searches (0: none)")

		nodeID   = flag.String("node-id", "", "cluster mode: this node's id (must appear in -peers)")
		peers    = flag.String("peers", "", "cluster mode: full static membership as id=addr,id=addr (self included)")
		replicas = flag.Int("replicas", 2, "cluster mode: replication factor R (owner + R-1 replicas per fingerprint)")
		vnodes   = flag.Int("vnodes", 0, "cluster mode: virtual nodes per member on the hash ring (0: default 128)")
		probeIvl = flag.Duration("probe-interval", 2*time.Second, "cluster mode: active health-probe interval")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []serve.Option{
		serve.WithCacheCap(*cacheCap),
		serve.WithJobWorkers(*workers),
		serve.WithLog(log.Printf),
		serve.WithLimits(serve.Limits{
			MaxInflight:    *maxInflight,
			MaxQueue:       *maxQueue,
			RequestTimeout: *reqTimeout,
		}),
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if skipped := st.LoadSkipped(); skipped > 0 {
			log.Printf("plan store: skipped %d unreadable documents in %s", skipped, *storeDir)
		}
		log.Printf("plan store: %d plans loaded from %s", st.Len(), *storeDir)
		opts = append(opts, serve.WithStore(st))
	}
	if (*nodeID == "") != (*peers == "") {
		log.Fatal("cluster mode needs both -node-id and -peers")
	}
	if *nodeID != "" {
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:     *nodeID,
			Members:  members,
			Replicas: *replicas,
			VNodes:   *vnodes,
		})
		if err != nil {
			log.Fatal(err)
		}
		cl.Start(*probeIvl)
		defer cl.Stop()
		opts = append(opts, serve.WithCluster(cl))
		log.Printf("cluster mode: node %s in a %d-member ring (R=%d, %d vnodes, probe every %v)",
			*nodeID, len(members), cl.ReplicationFactor(), cl.Ring().VNodes(), *probeIvl)
	}

	log.Printf("serving on %s (POST /tune /simulate /jobs, GET /jobs /cluster /healthz /stats /metrics)", *addr)
	err := serve.New(opts...).ListenAndServe(ctx, *addr, *grace)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
