// Command mistserve runs the Mist tuning service: a concurrent HTTP/JSON
// API over the auto-tuner and the execution engine, with a plan cache
// keyed by (workload, cluster, space) so repeated requests are answered
// instantly, an async job queue for batch tuning, and (with -store-dir)
// a durable plan store that survives restarts and warm-starts near-miss
// searches. It shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight tuning requests.
//
// Cluster mode comes in two flavors:
//
//   - static boot: -node-id + -peers name the full membership up front;
//   - elastic join: -node-id + -advertise + -join <peer-url> boots a
//     fresh node straight into a live cluster — it announces itself to
//     one seed peer, adopts the cluster's membership view, and the
//     background rebalancer pulls the records it now replicates.
//
// Members leave gracefully via `POST /cluster/drain {"id":"nX"}` on any
// live node: the ring shrinks, the drained node keeps serving (by
// forwarding) while it hands its records off, and repair restores the
// replication factor among the survivors.
//
// With -pilot the fleet also heals and scales itself: every node runs
// the same deterministic controller, the lowest-id live member acts,
// and it joins warm standbys from -standby-pool under saturation,
// drains them back when healthy, and auto-drains stuck members. Boot a
// warm standby with -node-id + -advertise alone (no -peers/-join): it
// parks outside the ring until a pilot scale-up admits it. Controller
// state is served at GET /pilot; -pilot-dry-run rehearses without
// actuating.
//
// Example session:
//
//	mistserve -addr :8080 -store-dir /var/lib/mist/plans &
//	curl -s localhost:8080/tune -d '{"model":"gpt3-2.7b","gpus":4,"batch":32}'
//	curl -s localhost:8080/jobs -d '{"jobs":[{"model":"gpt3-2.7b","gpus":4,"batch":64},{"model":"gpt3-2.7b","gpus":8,"batch":64,"priority":1}]}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/stats
//
// Elastic cluster session:
//
//	mistserve -addr :8081 -node-id n1 -peers 'n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082' &
//	mistserve -addr :8082 -node-id n2 -peers 'n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082' &
//	mistserve -addr :8083 -node-id n3 -advertise http://127.0.0.1:8083 -join http://127.0.0.1:8081 &
//	curl -s localhost:8081/cluster                      # epoch 1, three members
//	curl -s localhost:8082/cluster/drain -d '{"id":"n1"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served at -debug-addr
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/pilot"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		grace       = flag.Duration("grace", 30*time.Second, "graceful-shutdown drain timeout")
		storeDir    = flag.String("store-dir", "", "durable plan-store directory (empty: in-memory only)")
		cacheCap    = flag.Int("cache-cap", 0, "in-memory plan-cache capacity (0: default 1024)")
		evalCap     = flag.Int("eval-cache-cap", 0, "cross-request eval-cache budget in memoized pricings across all analyzer fingerprints (0: default 4Mi points, ~400 MB)")
		workers     = flag.Int("workers", 0, "async job worker pool size (0: default 2)")
		maxInflight = flag.Int("max-inflight", 0, "concurrently executing requests per endpoint class (0: GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission wait-queue and async job-queue bound; overflow answers 429 (0: default 256)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline, propagated into running searches (0: none)")

		traceRing   = flag.Int("trace-ring", 256, "completed-trace ring capacity (GET /debug/traces)")
		traceSample = flag.Int("trace-sample", 0, "trace every Nth operation (1: all, 0: only requests arriving with X-Mist-Trace)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")

		nodeID    = flag.String("node-id", "", "cluster mode: this node's id (must appear in -peers, or pair with -join)")
		peers     = flag.String("peers", "", "cluster mode: full static membership as id=addr,id=addr (self included)")
		joinPeer  = flag.String("join", "", "cluster mode: boot by joining a live cluster through this peer URL (needs -node-id and -advertise)")
		advertise = flag.String("advertise", "", "cluster mode: the URL peers reach this node at (required with -join)")
		replicas  = flag.Int("replicas", 2, "cluster mode: replication factor R (owner + R-1 replicas per fingerprint)")
		vnodes    = flag.Int("vnodes", 0, "cluster mode: virtual nodes per member on the hash ring (0: default 128)")
		probeIvl  = flag.Duration("probe-interval", 2*time.Second, "cluster mode: active health-probe interval")
		rebalIvl  = flag.Duration("rebalance-interval", 15*time.Second, "cluster mode: anti-entropy repair cadence (0: kick-driven only)")

		sloPath = flag.String("slo-config", "", "JSON SLO spec: evaluate it continuously and serve verdicts at GET /slo and GET /cluster/health")

		pilotOn     = flag.Bool("pilot", false, "cluster mode: run the autoscaling/self-healing controller (the lowest-id live member acts; state at GET /pilot)")
		pilotPath   = flag.String("pilot-config", "", "JSON pilot policy (implies -pilot; empty with -pilot: built-in defaults)")
		pilotDry    = flag.Bool("pilot-dry-run", false, "pilot records every decision on the event timeline but never actuates")
		standbyPool = flag.String("standby-pool", "", "cluster mode: warm standbys the pilot may scale into, as id=addr,id=addr")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("mistserve " + serve.ReadBuildInfo().String())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []serve.Option{
		serve.WithCacheCap(*cacheCap),
		serve.WithEvalCacheCap(*evalCap),
		serve.WithJobWorkers(*workers),
		serve.WithLog(log.Printf),
		serve.WithLimits(serve.Limits{
			MaxInflight:    *maxInflight,
			MaxQueue:       *maxQueue,
			RequestTimeout: *reqTimeout,
		}),
		// The recorder is always attached: with -trace-sample 0 it only
		// records requests that arrive carrying X-Mist-Trace (a client or
		// upstream hop decided to trace), which is the near-free path.
		serve.WithTrace(trace.Options{
			Node:        *nodeID,
			Capacity:    *traceRing,
			SampleEvery: *traceSample,
		}),
	}
	if *sloPath != "" {
		cfg, err := slo.LoadConfig(*sloPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("slo: %d objectives from %s (interval %dms), verdicts at GET /slo and GET /cluster/health",
			len(cfg.Objectives), *sloPath, cfg.IntervalMs)
		opts = append(opts, serve.WithSLO(cfg))
	}
	if *peers != "" && *joinPeer != "" {
		log.Fatal("-peers and -join are mutually exclusive (static boot vs elastic join)")
	}
	// -node-id + -advertise with neither -peers nor -join boots a warm
	// standby: a parked single-member view on the real transport, serving
	// nothing to the ring until a pilot (or operator join) admits it.
	standbyBoot := *peers == "" && *joinPeer == "" && *nodeID != "" && *advertise != ""
	clusterMode := *peers != "" || *joinPeer != "" || standbyBoot
	if clusterMode && *nodeID == "" {
		log.Fatal("cluster mode needs -node-id together with -peers or -join")
	}
	if *nodeID != "" && !clusterMode {
		log.Fatal("-node-id needs -peers, -join, or -advertise (warm-standby boot)")
	}
	pilotEnabled := *pilotOn || *pilotPath != ""
	if (pilotEnabled || *standbyPool != "") && !clusterMode {
		log.Fatal("-pilot and -standby-pool need cluster mode (-peers, -join, or a warm-standby boot)")
	}
	if pilotEnabled {
		var pcfg pilot.Config
		if *pilotPath != "" {
			var err error
			if pcfg, err = pilot.LoadConfig(*pilotPath); err != nil {
				log.Fatal(err)
			}
		} else if err := pcfg.Validate(); err != nil {
			log.Fatal(err)
		}
		if *pilotDry {
			pcfg.DryRun = true
		}
		mode := "actuating"
		if pcfg.DryRun {
			mode = "dry-run"
		}
		log.Printf("pilot: %s controller every %dms (cooldown %ds, <=%d actions/%ds, floor %d nodes), state at GET /pilot",
			mode, pcfg.IntervalMs, pcfg.CooldownS, pcfg.MaxActionsPerWindow, pcfg.WindowS, pcfg.MinNodes)
		opts = append(opts, serve.WithPilot(pcfg))
	}
	var pool []cluster.Member
	if *standbyPool != "" {
		var err error
		if pool, err = cluster.ParsePeers(*standbyPool); err != nil {
			log.Fatal(err)
		}
		log.Printf("standby pool: %d warm nodes the pilot may scale into", len(pool))
	}
	if standbyBoot {
		// A parked standby must know it is one — otherwise its lonely
		// single-member view makes it consider itself the pilot leader of
		// a fleet it was never admitted to.
		self := false
		for _, m := range pool {
			self = self || m.ID == *nodeID
		}
		if !self {
			pool = append(pool, cluster.Member{ID: *nodeID, Addr: *advertise})
		}
	}
	if len(pool) > 0 {
		opts = append(opts, serve.WithStandbyPool(pool))
	}
	if *storeDir != "" || clusterMode {
		// Cluster mode always attaches a store (in-memory when no
		// directory is given): replication, failover, and anti-entropy
		// repair all move store records between nodes.
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if *storeDir != "" {
			if skipped := st.LoadSkipped(); skipped > 0 {
				log.Printf("plan store: skipped %d unreadable documents in %s", skipped, *storeDir)
			}
			log.Printf("plan store: %d plans loaded from %s", st.Len(), *storeDir)
		}
		opts = append(opts, serve.WithStore(st))
	}

	var cl *cluster.Cluster
	switch {
	case standbyBoot:
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:     *nodeID,
			Members:  []cluster.Member{{ID: *nodeID, Addr: *advertise}},
			Replicas: *replicas,
			VNodes:   *vnodes,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warm standby: node %s parked at %s — it serves nothing to the ring until a pilot scale-up (or an operator join) admits it",
			*nodeID, *advertise)
	case *peers != "":
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatal(err)
		}
		cl, err = cluster.New(cluster.Config{
			Self:     *nodeID,
			Members:  members,
			Replicas: *replicas,
			VNodes:   *vnodes,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster mode: node %s in a %d-member ring (R=%d, %d vnodes, probe every %v)",
			*nodeID, len(members), cl.ReplicationFactor(), cl.Ring().VNodes(), *probeIvl)
	case *joinPeer != "":
		if *advertise == "" {
			log.Fatal("-join needs -advertise (the URL peers reach this node at)")
		}
		self := cluster.Member{ID: *nodeID, Addr: *advertise}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:     *nodeID,
			Members:  []cluster.Member{self},
			Replicas: *replicas,
			VNodes:   *vnodes,
		})
		if err != nil {
			log.Fatal(err)
		}
		jctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		view, err := cluster.JoinVia(jctx, &http.Client{Timeout: 10 * time.Second}, *joinPeer, self)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cl.AdoptView(view); err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster mode: node %s joined via %s -> epoch %d (%d members, R=%d)",
			*nodeID, *joinPeer, view.Epoch, len(view.Members), cl.ReplicationFactor())
		// A join racing a concurrent membership change can lose the
		// equal-epoch tie-break: probe-driven view reconciliation then
		// converges this node onto a fleet view WITHOUT it (at the join
		// epoch, or later if more changes landed meanwhile), and it
		// would otherwise sit outside the ring forever. The
		// disambiguation from an operator drain is membership history: a
		// drain of this node can only exist in a view lineage that once
		// INCLUDED it. So the watcher re-announces exclusions for as
		// long as the node has never been observed in-ring (ProposeJoin
		// is idempotent, so re-announcing an already-won join is a
		// no-op), treats any exclusion AFTER having been in-ring as a
		// drain that must stand, and retires once the node has been
		// stably in-ring for a few probe rounds (long enough for
		// reconciliation to have surfaced any divergence). A drain
		// landing inside that short stabilization window can be
		// contested at most once — re-issue it.
		go func(self cluster.Member, seed string) {
			ivl := *probeIvl
			if ivl <= 0 {
				ivl = 2 * time.Second // the checker's own probe default
			}
			everInRing := false
			inRingStreak := 0
			for {
				time.Sleep(2 * ivl)
				if cl.InRing() {
					everInRing = true
					if inRingStreak++; inRingStreak >= 3 {
						return
					}
					continue
				}
				inRingStreak = 0
				if everInRing {
					log.Printf("cluster mode: node %s excluded after having been in the ring (operator drain); standing down", self.ID)
					return
				}
				log.Printf("cluster mode: node %s lost its join race (view epoch %d excludes it); re-announcing via %s",
					self.ID, cl.Epoch(), seed)
				rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
				v, err := cluster.JoinVia(rctx, &http.Client{Timeout: 10 * time.Second}, seed, self)
				rcancel()
				if err != nil {
					log.Printf("cluster mode: re-join failed: %v", err)
					continue
				}
				_, _ = cl.AdoptView(v)
			}
		}(self, *joinPeer)
	}
	if cl != nil {
		cl.Start(*probeIvl)
		defer cl.Stop()
		opts = append(opts, serve.WithCluster(cl))
	}

	s := serve.New(opts...)
	if cl != nil {
		// The background anti-entropy repairer: periodic passes plus an
		// immediate one on every adopted membership change. For a node
		// booted with -join, the first pass pulls every record it now
		// replicates from its peers.
		s.StartRebalancer(*rebalIvl)
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("debug server on %s (GET /debug/pprof)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}
	log.Printf("serving on %s (POST /tune /simulate /jobs, GET /jobs /cluster /cluster/events /cluster/health /slo /pilot /healthz /stats /metrics /debug/traces)", *addr)
	err := s.ListenAndServe(ctx, *addr, *grace)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
