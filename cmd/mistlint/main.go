// Command mistlint runs the repo's static-analysis suite: six
// analyzers that machine-check the concurrency, determinism, and
// wire-protocol invariants the replicated serving cluster depends on
// (see internal/lint). It loads and type-checks every package in the
// module from source — stdlib only, no network — and exits non-zero on
// any finding.
//
// Usage:
//
//	mistlint [-C dir] [-q] [packages]
//
// The package arguments are accepted for familiarity ("./..." runs
// everything, the default); a specific import path restricts which
// packages are checked, though the whole module is always loaded so
// cross-package taint facts stay complete.
//
// Intentional exceptions are annotated in the source:
//
//	//mistlint:ignore check-name reason
//
// on the offending line or the line above. Every directive is tallied
// in the summary; malformed or unused directives are themselves
// reported.
//
// Exit codes: 0 clean, 1 findings, 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("C", ".", "module root to analyze")
	quiet := flag.Bool("q", false, "suppress the summary line (diagnostics only)")
	flag.Parse()

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mistlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mistlint: %v\n", err)
		return 2
	}
	prog := lint.NewProgram(loader.Fset, loader.ModulePath, pkgs)
	res := lint.Run(prog, lint.DefaultConfig(), lint.Analyzers())

	if only := packageFilter(loader.ModulePath, flag.Args()); only != nil {
		var kept []lint.Diagnostic
		for _, d := range res.Diagnostics {
			if only[pkgOf(prog, d)] {
				kept = append(kept, d)
			}
		}
		res.Diagnostics = kept
	}

	if *quiet {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	} else {
		res.WriteReport(os.Stdout)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// packageFilter interprets the positional arguments: nil means run on
// everything ("./..." or no args); otherwise the set of import paths
// whose diagnostics to keep.
func packageFilter(modulePath string, args []string) map[string]bool {
	var only map[string]bool
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return nil
		}
		ip := strings.TrimSuffix(a, "/...")
		ip = strings.TrimPrefix(ip, "./")
		if !strings.HasPrefix(ip, modulePath) {
			ip = modulePath + "/" + ip
		}
		if only == nil {
			only = map[string]bool{}
		}
		only[ip] = true
	}
	return only
}

// pkgOf maps a diagnostic back to the import path of the package whose
// directory contains its file.
func pkgOf(prog *lint.Program, d lint.Diagnostic) string {
	for _, p := range prog.Pkgs {
		if strings.HasPrefix(d.Pos.Filename, p.Dir+string(os.PathSeparator)) {
			return p.Path
		}
	}
	return ""
}
