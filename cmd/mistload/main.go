// Command mistload replays a named load scenario against the tuning
// service and prints a machine-readable JSON report (per-endpoint
// p50/p95/p99 latency, throughput, status-code counts) suitable for
// BENCH*.json trajectory tracking.
//
// The op stream is deterministic in (-scenario, -seed): the same pair
// replays the same request sequence, so two runs are comparable. Pick a
// target explicitly: a live server (-addr) or an in-process one
// (-inproc) built with the same -max-queue / -request-timeout knobs as
// mistserve — the zero-network way to measure the serving hot path.
//
// Cluster targets: -addr takes a comma-separated list of node URLs
// (ops round-robin across them), and -inproc -nodes N spins up an
// in-process N-node cluster wired over an in-memory transport. Three
// mid-run drills mirror the failure modes of an elastic fleet:
//
//	-kill  id@delay — node dies; survivors must keep answering its
//	                  fingerprints from replicated stores with zero 5xx
//	-join  id@delay — a fresh node joins the ring mid-run; ownership
//	                  moves, records migrate, no request may 5xx and no
//	                  fingerprint may be re-searched
//	-drain id@delay — a member leaves gracefully: it keeps serving by
//	                  forwarding, hands its records off, and the fleet
//	                  restores the replication factor
//
// After a join or drain drill the run settles repair and audits the
// elastic invariants (every fingerprint at exactly R live replicas,
// every record Version==1, searches == distinct fingerprints), failing
// the run on any violation.
//
// With -pilot the in-process fleet runs the autoscaling/self-healing
// controller (policy from -pilot-config, conservative defaults
// otherwise), -standbys k parks k warm standbys it may scale into, and
// the run ends with a controller audit: the acting pilot's decision
// counters land in the report's "pilot" section, and the run fails if
// the controller broke its own guardrails (rate cap exceeded, a static
// node drained). The diurnal and flash-crowd scenarios are shaped for
// exactly this: slow swells the pilot should ride out and a step
// overload it should scale through.
//
// Examples:
//
//	mistload -scenario mixed -inproc -duration 5s -seed 1
//	mistload -scenario mixed -inproc -nodes 3 -duration 5s -seed 1
//	mistload -scenario mixed -inproc -nodes 3 -duration 5s -trace-sample 1
//	mistload -scenario mixed -inproc -nodes 3 -duration 5s -slo-config testdata/slo.json
//	mistload -scenario failover -inproc -nodes 3 -duration 6s -kill n2@3s
//	mistload -scenario elastic -inproc -nodes 3 -duration 7s -join n4@2s -drain n1@4s
//	mistload -scenario flash-crowd -inproc -nodes 3 -standbys 2 -pilot -pilot-config testdata/pilot.json -slo-config testdata/slo.json -duration 8s
//	mistload -scenario cold-storm -addr http://localhost:8080 -duration 30s -rate 50
//	mistload -scenario mixed -addr http://10.0.0.1:8080,http://10.0.0.2:8080 -duration 30s
//	mistload -list
//
// With -slo-config the run is also scored against a declarative SLO
// spec (see DESIGN.md): the report gains an "slo" section with the
// client-side verdict per objective, in-process servers evaluate the
// same spec continuously (their fleet fold lands in "fleetHealth"),
// and a run that exhausts any error budget exits non-zero.
//
// Exit status: 0 on a clean run; 1 when the run saw server 5xx or
// transport errors (pass -allow-5xx to report them without failing),
// when the post-drill replication audit found a violation, when a
// -trace-sample run's span audit failed (a sampled op that published
// no root span, or a span left unfinished after the job tail drained),
// or when a -slo-config run exhausted an objective's error budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/pilot"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistload: ")
	var (
		scenario    = flag.String("scenario", "mixed", "load scenario (see -list)")
		seed        = flag.Int64("seed", 1, "op-stream seed (same seed: same request sequence)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to feed new requests")
		maxOps      = flag.Int("max-ops", 0, "stop after this many requests (0: duration-bound only)")
		concurrency = flag.Int("concurrency", 8, "parallel load workers")
		rate        = flag.Float64("rate", 0, "target arrival rate in req/s (0: unpaced)")
		addr        = flag.String("addr", "", "live server URL(s), comma-separated for a cluster (e.g. http://localhost:8080)")
		inproc      = flag.Bool("inproc", false, "run against an in-process server (required unless -addr is set)")
		nodes       = flag.Int("nodes", 1, "in-process cluster size (with -inproc; 1 = plain single server)")
		replicas    = flag.Int("replicas", 2, "in-process cluster replication factor")
		kill        = flag.String("kill", "", "kill an in-process node mid-run, as id@delay (e.g. n2@3s; needs -nodes > 1)")
		join        = flag.String("join", "", "join a fresh node to the in-process ring mid-run, as id@delay (e.g. n4@2s; needs -nodes > 1)")
		drain       = flag.String("drain", "", "drain an in-process node mid-run, as id@delay (e.g. n1@4s; needs -nodes > 1)")
		maxQueue    = flag.Int("max-queue", 0, "in-process server admission/job-queue bound (0: default 256)")
		reqTimeout  = flag.Duration("request-timeout", 0, "in-process server per-request deadline (0: none)")
		workers     = flag.Int("workers", 2, "in-process server job workers")
		out         = flag.String("out", "", "also write the JSON report to this file")
		allow5xx    = flag.Bool("allow-5xx", false, "do not fail the run on server 5xx responses")
		traceSample = flag.Int("trace-sample", 0, "stamp X-Mist-Trace on every Nth op, then audit spans and report per-phase latency (0: off; 1: every op)")
		traceSettle = flag.Duration("trace-settle", 2*time.Minute, "how long the trace audit waits for open spans (queued job tails) to drain")
		sloPath     = flag.String("slo-config", "", "JSON SLO spec: score the run against it (report gains an slo section; budget exhaustion fails the run) and attach it to in-process servers")
		pilotOn     = flag.Bool("pilot", false, "attach the autoscaling pilot to the in-process cluster and audit its decisions post-run (needs -inproc -nodes > 1)")
		pilotPath   = flag.String("pilot-config", "", "JSON pilot policy for -pilot (default policy otherwise; implies -pilot)")
		standbys    = flag.Int("standbys", 0, "warm-standby pool size the pilot may scale into (needs -pilot)")
		list        = flag.Bool("list", false, "list scenarios and exit")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("mistload " + serve.ReadBuildInfo().String())
		return
	}
	if *list {
		for _, name := range load.ScenarioNames() {
			fmt.Printf("%-16s %s\n", name, load.ScenarioDescription(name))
		}
		return
	}
	if *addr != "" && *inproc {
		log.Fatal("-addr and -inproc are mutually exclusive")
	}
	if *addr == "" && !*inproc {
		log.Fatal("choose a target: -inproc or -addr <url>")
	}
	if *nodes > 1 && !*inproc {
		log.Fatal("-nodes needs -inproc (point -addr at the live nodes instead)")
	}
	for flagName, v := range map[string]string{"-kill": *kill, "-join": *join, "-drain": *drain} {
		if v != "" && *nodes <= 1 {
			log.Fatalf("%s needs an in-process cluster (-inproc -nodes N)", flagName)
		}
	}
	pilotEnabled := *pilotOn || *pilotPath != ""
	if pilotEnabled && (!*inproc || *nodes <= 1) {
		log.Fatal("-pilot needs an in-process cluster (-inproc -nodes N)")
	}
	if *standbys > 0 && !pilotEnabled {
		log.Fatal("-standbys needs -pilot (nothing else scales into the pool)")
	}
	var pilotCfg pilot.Config
	if pilotEnabled {
		if *pilotPath != "" {
			cfg, err := pilot.LoadConfig(*pilotPath)
			if err != nil {
				log.Fatal(err)
			}
			pilotCfg = cfg
		} else if err := pilotCfg.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	// -max-ops means a count-bound run: the 5s -duration default would
	// silently truncate it on slow machines, breaking replay
	// comparability. An explicit -duration still acts as a cutoff.
	if *maxOps > 0 {
		durationSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				durationSet = true
			}
		})
		if !durationSet {
			*duration = 0
		}
	}

	var sloCfg *slo.Config
	if *sloPath != "" {
		cfg, err := slo.LoadConfig(*sloPath)
		if err != nil {
			log.Fatal(err)
		}
		sloCfg = &cfg
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := load.Options{
		Scenario:    *scenario,
		Seed:        *seed,
		Concurrency: *concurrency,
		Rate:        *rate,
		Duration:    *duration,
		MaxOps:      *maxOps,
		BaseURL:     *addr,
		TraceSample: *traceSample,
		SLOConfig:   sloCfg,
	}
	// Extra options shared by both in-process paths. Servers only record
	// traces when built with a recorder — a ring well past the default
	// keeps the phase breakdown complete for short sampled runs — and
	// only evaluate SLOs when built with the spec.
	var serverTraceOpts []serve.Option
	if *traceSample > 0 {
		serverTraceOpts = append(serverTraceOpts, serve.WithTrace(trace.Options{Capacity: 4096}))
	}
	if sloCfg != nil && *inproc {
		serverTraceOpts = append(serverTraceOpts, serve.WithSLO(*sloCfg))
	}
	var (
		target load.Target
		// traceTargets are the per-node /debug/traces endpoints the trace
		// audit folds; nil skips the audit (a killed node's recorder dies
		// with it, taking its counters along).
		traceTargets []load.Target
		// healthTargets answer the post-run GET /cluster/health probe;
		// the first node that replies supplies the fleet verdict.
		healthTargets []load.Target
		traceLC       *serve.LocalCluster // in-proc cluster: re-list nodes post-run (a -join adds one)
		auditLC       *serve.LocalCluster // set for elastic (join/drain/pilot) drills
		pilotLC       *serve.LocalCluster // set when the pilot is attached: post-run controller audit
		// The exactly-R audit is only sound when every dead node's loss
		// has been declared: a killed member still in the ring keeps its
		// replica slots, so its keys legitimately sit at R-1 live copies
		// until a drain removes it (see DESIGN.md). A -kill without a
		// matching -drain of the same node therefore skips the audit.
		auditSound = true
	)
	switch {
	case *addr == "" && *nodes <= 1:
		s := serve.New(append([]serve.Option{
			serve.WithJobWorkers(*workers),
			serve.WithLimits(serve.Limits{MaxQueue: *maxQueue, RequestTimeout: *reqTimeout}),
		}, serverTraceOpts...)...)
		defer s.Close()
		target = load.NewHandlerTarget(s.Handler())
		traceTargets = []load.Target{target}
		healthTargets = traceTargets
		log.Printf("replaying %q in-process (seed %d, %v, %d workers)",
			*scenario, *seed, *duration, *concurrency)
	case *addr == "":
		serverOpts := append([]serve.Option{
			serve.WithJobWorkers(*workers),
			serve.WithLimits(serve.Limits{MaxQueue: *maxQueue, RequestTimeout: *reqTimeout}),
		}, serverTraceOpts...)
		lcOpts := serve.LocalClusterOptions{
			Nodes:         *nodes,
			Replicas:      *replicas,
			ProbeInterval: 250 * time.Millisecond,
			// Background repair keeps migration overlapping the drill
			// itself; the post-run Settle only finishes the tail.
			RebalanceInterval: 500 * time.Millisecond,
			ServerOptions:     serverOpts,
		}
		if pilotEnabled {
			lcOpts.ServerOptions = append(lcOpts.ServerOptions, serve.WithPilot(pilotCfg))
			lcOpts.Standbys = *standbys
		}
		lc, err := serve.NewLocalCluster(lcOpts)
		if err != nil {
			log.Fatal(err)
		}
		defer lc.Close()
		if pilotEnabled {
			pilotLC = lc
			auditLC = lc // pilot actions are membership changes: settle + audit them
		}
		// Load only targets the boot ring: parked standbys are waiting
		// processes, not ingress — they take traffic via forwards once
		// the pilot admits them.
		ids := lc.IDs()[:*nodes]
		perNode := make([]load.Target, len(ids))
		for i, id := range ids {
			perNode[i] = load.NewHandlerTarget(lc.Handler(id))
		}
		healthTargets = perNode
		traceLC = lc
		mt, err := load.NewMultiTarget(perNode...)
		if err != nil {
			log.Fatal(err)
		}
		if *kill != "" {
			id, delay := parseDrill("-kill", *kill)
			if drainID, _ := drillTarget(*drain); drainID != id {
				auditSound = false
			}
			idx := -1
			for i, nid := range ids {
				if nid == id {
					idx = i
				}
			}
			if idx < 0 {
				log.Fatalf("-kill: unknown node %q (have %v)", id, ids)
			}
			time.AfterFunc(delay, func() {
				mt.Fail(idx)
				if err := lc.Kill(id); err != nil {
					log.Printf("kill %s: %v", id, err)
					return
				}
				log.Printf("killed node %s after %v; survivors must serve its fingerprints from replicas", id, delay)
			})
		}
		if *join != "" {
			id, delay := parseDrill("-join", *join)
			for _, nid := range ids {
				if nid == id {
					log.Fatalf("-join: node %q already in the cluster (have %v)", id, ids)
				}
			}
			auditLC = lc
			time.AfterFunc(delay, func() {
				if _, err := lc.Join(ctx, id); err != nil {
					log.Printf("join %s: %v", id, err)
					return
				}
				mt.Add(load.NewHandlerTarget(lc.Handler(id)))
				log.Printf("joined node %s after %v; ownership moves, repair migrates its records", id, delay)
			})
		}
		if *drain != "" {
			id, delay := parseDrill("-drain", *drain)
			auditLC = lc
			time.AfterFunc(delay, func() {
				if err := lc.Drain(ctx, id); err != nil {
					log.Printf("drain %s: %v", id, err)
					return
				}
				// The drained node stays in the rotation on purpose: it
				// must keep answering (by forwarding) with zero 5xx.
				log.Printf("drained node %s after %v; it keeps serving by forwarding while handing records off", id, delay)
			})
		}
		target = mt
		log.Printf("replaying %q against an in-process %d-node cluster (R=%d, seed %d, %v, %d workers)",
			*scenario, *nodes, *replicas, *seed, *duration, *concurrency)
	default:
		addrs := strings.Split(*addr, ",")
		client := &http.Client{Timeout: 2 * time.Minute}
		for _, a := range addrs {
			t, err := load.WithBase(client, strings.TrimSpace(a))
			if err != nil {
				log.Fatal(err)
			}
			traceTargets = append(traceTargets, t)
		}
		healthTargets = traceTargets
		if len(addrs) == 1 {
			target = client
		} else {
			mt, err := load.NewMultiTarget(traceTargets...)
			if err != nil {
				log.Fatal(err)
			}
			target = mt
			// Multi-addr ops carry a placeholder URL that each node
			// target rebases; BaseURL must stay empty.
			opts.BaseURL = ""
		}
		log.Printf("replaying %q against %s (seed %d, %v, %d workers)",
			*scenario, *addr, *seed, *duration, *concurrency)
	}

	rep, err := load.Run(ctx, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	var traceAuditErr error
	if *traceSample > 0 {
		if traceLC != nil {
			// Re-list the cluster: a -join drill added a node (and a
			// recorder) after the targets were first built.
			traceTargets = traceTargets[:0]
			for _, id := range traceLC.IDs() {
				traceTargets = append(traceTargets, load.NewHandlerTarget(traceLC.Handler(id)))
			}
		}
		switch {
		case *kill != "":
			log.Printf("skipping the trace audit: a killed node's recorder (and its span counters) died with it")
		case len(traceTargets) == 0:
			log.Printf("skipping the trace audit: no per-node debug targets")
		default:
			settleCtx, cancel := context.WithTimeout(context.Background(), *traceSettle)
			audit, phases, aerr := load.AuditTraces(settleCtx, traceTargets, rep.TracedOps)
			cancel()
			rep.TraceAudit = audit
			rep.Phases = phases
			traceAuditErr = aerr
		}
	}
	if sloCfg != nil && len(healthTargets) > 0 {
		hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
		fh, ferr := load.FetchFleetHealth(hctx, healthTargets)
		hcancel()
		if ferr != nil {
			// A live -addr fleet built without -slo-config answers 404;
			// the client-side score still stands on its own.
			log.Printf("skipping fleet health: %v", ferr)
		} else {
			rep.FleetHealth = fh
		}
	}
	// Post-run controller audit: snapshot the acting pilot, check the
	// guardrails held (rate cap respected, static fleet never shrunk),
	// and reconcile drill flags with what the controller actually did.
	var pilotViolations []string
	if pilotLC != nil {
		var leaderID string
		for _, id := range pilotLC.IDs() {
			if s := pilotLC.Node(id); s != nil && s.Pilot() != nil && s.PilotLeader() {
				leaderID = id
				break
			}
		}
		if leaderID == "" {
			log.Printf("pilot audit: no acting controller found (every pilot-bearing node dead?)")
		} else {
			st := pilotLC.Node(leaderID).Pilot().Status()
			rep.Pilot = &st
			if st.ActionsInWindow > st.Config.MaxActionsPerWindow {
				pilotViolations = append(pilotViolations, fmt.Sprintf(
					"%d actions inside the rate window, cap is %d", st.ActionsInWindow, st.Config.MaxActionsPerWindow))
			}
			killID, _ := drillTarget(*kill)
			drainID, _ := drillTarget(*drain)
			inView := map[string]bool{}
			for _, m := range pilotLC.Cluster(leaderID).Members() {
				inView[m.ID] = true
			}
			for i := 1; i <= *nodes; i++ {
				id := fmt.Sprintf("n%d", i)
				if !inView[id] && id != killID && id != drainID {
					pilotViolations = append(pilotViolations, fmt.Sprintf(
						"static node %s missing from the final view: the pilot may only drain standbys and declared corpses", id))
				}
			}
			// A heal-drain declares the killed node's loss, which is
			// exactly what makes the exactly-R audit sound again.
			if killID != "" && !auditSound && !inView[killID] {
				log.Printf("pilot declared %s's loss (auto-drain): elastic audit is sound", killID)
				auditSound = true
			}
			log.Printf("pilot audit (leader %s): %d evals, %d scale-ups, %d scale-downs, %d heal-drains, %d vetoes; final view %d members, %d standbys available",
				leaderID, st.Evals, st.ScaleUps, st.ScaleDowns, st.HealDrains, st.Vetoes,
				len(inView), len(pilotLC.Cluster(leaderID).AvailableStandbys()))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if traceAuditErr != nil {
		log.Fatalf("FAIL: %v", traceAuditErr)
	}
	if rep.TransportErrors > 0 {
		log.Fatalf("FAIL: %d transport errors", rep.TransportErrors)
	}
	if rep.Server5xx > 0 && !*allow5xx {
		log.Fatalf("FAIL: %d server 5xx responses", rep.Server5xx)
	}
	if auditLC != nil && !auditSound {
		log.Printf("skipping the elastic audit: -kill without draining the same node leaves its keys legitimately under-replicated until the loss is declared")
	}
	if auditLC != nil && auditSound {
		settleCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := auditLC.Settle(settleCtx, 3); err != nil {
			log.Fatalf("FAIL: settling repair: %v", err)
		}
		audit, err := auditLC.AuditReplication()
		if err != nil {
			log.Fatalf("FAIL: replication audit: %v", err)
		}
		// Placement invariants (exactly-R replicas, drained nodes empty)
		// are hard failures always. Single-flight invariants (searches ==
		// fingerprints, Version==1) are hard only when membership was
		// static or changed by an explicit drill: a pilot scaling the
		// fleet mid-traffic lets cold keys race an epoch change, where
		// both the old and new owner legitimately miss and search before
		// the views converge.
		fatal := append([]string(nil), audit.Violations...)
		if !pilotEnabled {
			fatal = append(fatal, audit.SearchViolations...)
		} else {
			for _, v := range audit.SearchViolations {
				log.Printf("audit note (soft, autoscaling run): %s", v)
			}
		}
		if len(fatal) > 0 {
			for _, v := range fatal {
				log.Printf("audit violation: %s", v)
			}
			log.Fatalf("FAIL: %d elastic-invariant violations after the drill", len(fatal))
		}
		log.Printf("elastic audit clean: epoch %d, %d fingerprints each on exactly %d of live members %v, %d searches total",
			audit.Epoch, audit.Fingerprints, min(audit.Replicas, len(audit.Live)), audit.Live, audit.SearchesRun)
	}
	if len(pilotViolations) > 0 {
		for _, v := range pilotViolations {
			log.Printf("pilot-audit violation: %s", v)
		}
		log.Fatalf("FAIL: %d pilot-audit violations", len(pilotViolations))
	}
	if rep.SLO != nil && !rep.SLO.Met {
		var exhausted []string
		for _, st := range rep.SLO.Objectives {
			if st.State != slo.StateOK {
				exhausted = append(exhausted, fmt.Sprintf("%s (budget remaining %.3f)", st.Name, st.BudgetRemaining))
			}
		}
		if pilotEnabled {
			// An autoscaling drill drives the fleet through deliberate
			// overload — burned backpressure budget is the stimulus the
			// pilot reacts to, not a regression. The pilot audit above
			// is the pass/fail gate for these runs.
			log.Printf("SLO error budget exhausted (expected under an autoscaling drill): %s",
				strings.Join(exhausted, ", "))
		} else {
			log.Fatalf("FAIL: SLO error budget exhausted: %s", strings.Join(exhausted, ", "))
		}
	}
}

// parseDrill parses the shared drill wire format id@delay (e.g.
// "n2@3s") used by -kill, -join, and -drain.
func parseDrill(flagName, s string) (string, time.Duration) {
	id, rest, ok := strings.Cut(s, "@")
	if !ok || id == "" {
		log.Fatalf("%s: want id@delay, got %q", flagName, s)
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d < 0 {
		log.Fatalf("%s: bad delay in %q: %v", flagName, s, err)
	}
	return id, d
}

// drillTarget extracts the id of a drill spec without validating it
// ("" when the flag is unset or malformed — parseDrill reports those).
func drillTarget(s string) (string, bool) {
	id, _, ok := strings.Cut(s, "@")
	return id, ok
}
