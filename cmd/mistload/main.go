// Command mistload replays a named load scenario against the tuning
// service and prints a machine-readable JSON report (per-endpoint
// p50/p95/p99 latency, throughput, status-code counts) suitable for
// BENCH_*.json trajectory tracking.
//
// The op stream is deterministic in (-scenario, -seed): the same pair
// replays the same request sequence, so two runs are comparable. Pick a
// target explicitly: a live server (-addr) or an in-process one
// (-inproc) built with the same -max-queue / -request-timeout knobs as
// mistserve — the zero-network way to measure the serving hot path.
//
// Examples:
//
//	mistload -scenario mixed -inproc -duration 5s -seed 1
//	mistload -scenario cold-storm -addr http://localhost:8080 -duration 30s -rate 50
//	mistload -list
//
// Exit status: 0 on a clean run; 1 when the run saw server 5xx or
// transport errors (pass -allow-5xx to report them without failing).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistload: ")
	var (
		scenario    = flag.String("scenario", "mixed", "load scenario (see -list)")
		seed        = flag.Int64("seed", 1, "op-stream seed (same seed: same request sequence)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to feed new requests")
		maxOps      = flag.Int("max-ops", 0, "stop after this many requests (0: duration-bound only)")
		concurrency = flag.Int("concurrency", 8, "parallel load workers")
		rate        = flag.Float64("rate", 0, "target arrival rate in req/s (0: unpaced)")
		addr        = flag.String("addr", "", "live server URL (e.g. http://localhost:8080)")
		inproc      = flag.Bool("inproc", false, "run against an in-process server (required unless -addr is set)")
		maxQueue    = flag.Int("max-queue", 0, "in-process server admission/job-queue bound (0: default 256)")
		reqTimeout  = flag.Duration("request-timeout", 0, "in-process server per-request deadline (0: none)")
		workers     = flag.Int("workers", 2, "in-process server job workers")
		out         = flag.String("out", "", "also write the JSON report to this file")
		allow5xx    = flag.Bool("allow-5xx", false, "do not fail the run on server 5xx responses")
		list        = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range load.ScenarioNames() {
			fmt.Printf("%-16s %s\n", name, load.ScenarioDescription(name))
		}
		return
	}
	if *addr != "" && *inproc {
		log.Fatal("-addr and -inproc are mutually exclusive")
	}
	if *addr == "" && !*inproc {
		log.Fatal("choose a target: -inproc or -addr <url>")
	}
	// -max-ops means a count-bound run: the 5s -duration default would
	// silently truncate it on slow machines, breaking replay
	// comparability. An explicit -duration still acts as a cutoff.
	if *maxOps > 0 {
		durationSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				durationSet = true
			}
		})
		if !durationSet {
			*duration = 0
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := load.Options{
		Scenario:    *scenario,
		Seed:        *seed,
		Concurrency: *concurrency,
		Rate:        *rate,
		Duration:    *duration,
		MaxOps:      *maxOps,
		BaseURL:     *addr,
	}
	var target load.Target
	if *addr == "" {
		s := serve.New(
			serve.WithJobWorkers(*workers),
			serve.WithLimits(serve.Limits{MaxQueue: *maxQueue, RequestTimeout: *reqTimeout}),
		)
		defer s.Close()
		target = load.NewHandlerTarget(s.Handler())
		log.Printf("replaying %q in-process (seed %d, %v, %d workers)",
			*scenario, *seed, *duration, *concurrency)
	} else {
		target = &http.Client{Timeout: 2 * time.Minute}
		log.Printf("replaying %q against %s (seed %d, %v, %d workers)",
			*scenario, *addr, *seed, *duration, *concurrency)
	}

	rep, err := load.Run(ctx, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.TransportErrors > 0 {
		log.Fatalf("FAIL: %d transport errors", rep.TransportErrors)
	}
	if rep.Server5xx > 0 && !*allow5xx {
		log.Fatalf("FAIL: %d server 5xx responses", rep.Server5xx)
	}
}
