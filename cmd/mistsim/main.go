// Command mistsim executes a training plan on the discrete-event engine
// and prints its timeline characteristics: per-stage microbatch costs,
// pipeline bubble, per-stage peak memory, and throughput.
//
// The plan comes either from a JSON file written by misttune -plan-out,
// or from flags describing a uniform plan:
//
//	mistsim -model gpt3-2.7b -platform l4 -gpus 4 -batch 32 \
//	        -stages 2 -g 4 -dp 1 -tp 2 -zero 2 -ckpt 8 -ao 0.5
//	mistsim -model gpt3-2.7b -platform l4 -gpus 4 -batch 32 -plan plan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	mist "repro"
	"repro/internal/schedule"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistsim: ")
	var (
		modelName = flag.String("model", "gpt3-2.7b", "model name")
		platform  = flag.String("platform", "l4", "l4 or a100")
		gpus      = flag.Int("gpus", 4, "total GPU count")
		batch     = flag.Int("batch", 32, "global batch size")
		seq       = flag.Int("seq", 0, "sequence length (default by platform)")
		flash     = flag.Bool("flash", true, "enable FlashAttention")
		planFile  = flag.String("plan", "", "JSON plan file (overrides the uniform-plan flags)")
		traceFile = flag.String("trace", "", "write a Chrome trace of the pipeline timeline to this file")

		stages = flag.Int("stages", 1, "pipeline stages")
		g      = flag.Int("g", 1, "gradient accumulation steps")
		dp     = flag.Int("dp", 0, "data-parallel degree per stage (default: devices/tp)")
		tp     = flag.Int("tp", 1, "tensor-parallel degree per stage")
		zero   = flag.Int("zero", 0, "ZeRO level 0..3")
		ckpt   = flag.Int("ckpt", -1, "checkpointed layers per stage (-1 = all)")
		wo     = flag.Float64("wo", 0, "weight offload ratio")
		gro    = flag.Float64("go", 0, "gradient offload ratio")
		oo     = flag.Float64("oo", 0, "optimizer offload ratio")
		ao     = flag.Float64("ao", 0, "activation offload ratio")
	)
	flag.Parse()

	cfg, err := mist.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	var cl *mist.Cluster
	switch strings.ToLower(*platform) {
	case "l4":
		cl = mist.L4Cluster(*gpus)
		if *seq == 0 {
			*seq = 2048
		}
	case "a100":
		cl = mist.A100Cluster(*gpus)
		if *seq == 0 {
			*seq = 4096
		}
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	w := mist.Workload{Model: cfg, Seq: *seq, Flash: *flash, GlobalBatch: *batch}

	var p *mist.Plan
	if *planFile != "" {
		data, err := os.ReadFile(*planFile)
		if err != nil {
			log.Fatal(err)
		}
		p = &mist.Plan{}
		if err := json.Unmarshal(data, p); err != nil {
			log.Fatal(err)
		}
	} else {
		p = uniformPlan(w, cl, *stages, *g, *dp, *tp, *zero, *ckpt, *wo, *gro, *oo, *ao)
	}

	m, err := mist.Simulate(w, cl, p)
	if err != nil {
		log.Fatal(err)
	}
	if *traceFile != "" {
		_, events, err := mist.Trace(w, cl, p)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := mist.WriteChromeTrace(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (open in chrome://tracing)\n", *traceFile)
	}
	fmt.Printf("plan:\n%s\n\n", p)
	fmt.Printf("iteration time: %.3fs  throughput: %.2f samples/s  bubble: %.1f%%\n",
		m.IterTime, m.Throughput, 100*m.Bubble)
	for i, c := range m.StageCosts {
		fmt.Printf("stage %d: fwd %.1fms bwd %.1fms first+%.1fms last+%.1fms peak %.2f GB\n",
			i, 1e3*c.Fwd, 1e3*c.Bwd, 1e3*c.FirstExtra, 1e3*c.LastExtra, m.PeakMem[i]/(1<<30))
	}
	if m.OOM(cl.MemoryBudget()) {
		fmt.Printf("RESULT: OOM (budget %.2f GB)\n", cl.MemoryBudget()/(1<<30))
		os.Exit(1)
	}
	fmt.Println("RESULT: fits")
}

// uniformPlan builds an S-stage plan with identical knobs per stage.
func uniformPlan(w mist.Workload, cl *mist.Cluster, s, g, dp, tp, zero, ckpt int, wo, gro, oo, ao float64) *mist.Plan {
	devPer := cl.TotalGPUs() / s
	if s <= 0 || devPer*s != cl.TotalGPUs() {
		log.Fatalf("stages %d must divide the GPU count %d", s, cl.TotalGPUs())
	}
	if dp == 0 {
		dp = devPer / tp
	}
	if dp*tp != devPer {
		log.Fatalf("dp(%d)*tp(%d) != devices per stage (%d)", dp, tp, devPer)
	}
	if w.GlobalBatch%(dp*g) != 0 {
		log.Fatalf("global batch %d not divisible by dp*G = %d", w.GlobalBatch, dp*g)
	}
	b := w.GlobalBatch / (dp * g)
	if w.Model.Layers%s != 0 {
		log.Fatalf("layers %d not divisible by stages %d", w.Model.Layers, s)
	}
	layers := w.Model.Layers / s
	if ckpt < 0 || ckpt > layers {
		ckpt = layers
	}
	p := &mist.Plan{GradAccum: g}
	for i := 0; i < s; i++ {
		p.Stages = append(p.Stages, mist.Stage{
			Shape: schedule.StageShape{
				B: b, DP: dp, TP: tp, ZeRO: zero,
				HasPre: i == 0, HasPost: i == s-1,
				NumStages: s, StageIdx: i, GradAccum: g,
			},
			Knobs: schedule.Knobs{Layers: layers, Ckpt: ckpt, WO: wo, GO: gro, OO: oo, AO: ao},
		})
	}
	return p
}
