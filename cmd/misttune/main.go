// Command misttune runs the Mist auto-tuner on one workload and prints
// the chosen plan, the analyzer's prediction, and the execution engine's
// measurement. With -batch it tunes a whole file of workloads through
// the async job queue instead, optionally against a durable plan store
// (-store-dir) so repeated invocations reuse and warm-start from earlier
// results.
//
// Example:
//
//	misttune -model gpt3-2.7b -platform l4 -gpus 4 -batch 32
//	misttune -model llama-7b -platform a100 -gpus 8 -batch 128 -space deepspeed
//	misttune -batch workloads.json -store-dir ./plans -workers 4
//
// The batch file is a JSON array of job specs:
//
//	[{"model":"gpt3-2.7b","gpus":4,"batch":32},
//	 {"model":"gpt3-2.7b","gpus":8,"batch":64,"priority":2}]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	mist "repro"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misttune: ")
	var (
		modelName = flag.String("model", "gpt3-2.7b", "model name (see -list-models)")
		platform  = flag.String("platform", "l4", "l4 or a100")
		gpus      = flag.Int("gpus", 4, "total GPU count (2, 4, 8 or a multiple of 8)")
		batchArg  = flag.String("batch", "32", "global batch size, or a JSON file of job specs to tune in batch mode")
		seq       = flag.Int("seq", 0, "sequence length (default: 2048 on l4, 4096 on a100)")
		flash     = flag.Bool("flash", true, "enable FlashAttention")
		spaceName = flag.String("space", "mist", "search space: mist|megatron|deepspeed|aceso|3d|uniform")
		planOut   = flag.String("plan-out", "", "write the tuned plan as JSON to this file")
		list      = flag.Bool("list-models", false, "list model catalog and exit")
		storeDir  = flag.String("store-dir", "", "durable plan-store directory for batch mode")
		workers   = flag.Int("workers", 2, "batch-mode worker pool size")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("misttune " + serve.ReadBuildInfo().String())
		return
	}
	if *list {
		for _, n := range mist.Models() {
			fmt.Println(n)
		}
		return
	}

	// -batch doubles as the entry into batch mode: a numeric value is
	// the single-workload global batch size, anything else names a JSON
	// file of job specs.
	batchSize, batchErr := strconv.Atoi(*batchArg)
	if batchErr != nil {
		if err := runBatch(*batchArg, *storeDir, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	batch := &batchSize

	cfg, err := mist.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	var cl *mist.Cluster
	switch strings.ToLower(*platform) {
	case "l4":
		cl = mist.L4Cluster(*gpus)
		if *seq == 0 {
			*seq = 2048
		}
	case "a100":
		cl = mist.A100Cluster(*gpus)
		if *seq == 0 {
			*seq = 4096
		}
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	var space mist.Space
	switch strings.ToLower(*spaceName) {
	case "mist":
		space = mist.MistSpace()
	case "megatron":
		space = mist.MegatronSpace()
	case "deepspeed":
		space = mist.DeepSpeedSpace()
	case "aceso":
		space = mist.AcesoSpace()
	case "3d":
		space = mist.ThreeDSpace()
	case "uniform":
		space = mist.UniformSpace()
	default:
		log.Fatalf("unknown space %q", *spaceName)
	}

	w := mist.Workload{Model: cfg, Seq: *seq, Flash: *flash, GlobalBatch: *batch}
	fmt.Printf("tuning %s on %d x %s (seq=%d, batch=%d, flash=%v, space=%s)\n",
		cfg.Name, *gpus, cl.GPU.Name, *seq, *batch, *flash, space.Name)

	res, err := mist.TuneWithSpace(w, cl, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest plan:\n%s\n", res.Plan)
	fmt.Printf("\npredicted iteration time: %.3fs (%.2f samples/s)\n", res.Predicted, res.PredThroughput)
	fmt.Printf("tuning: %d candidates over %d (S,G) pairs in %s (eval cache: %.1f%% hits, %d unique points)\n",
		res.Candidates, res.SGPairs, res.Elapsed.Round(1e6),
		100*res.CacheHitRate(), res.EvalCacheMisses)

	m, err := mist.Simulate(w, cl, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured iteration time: %.3fs (%.2f samples/s), bubble %.1f%%\n",
		m.IterTime, m.Throughput, 100*m.Bubble)
	for i, pm := range m.PeakMem {
		fmt.Printf("  stage %d peak memory: %.2f GB (budget %.2f GB)\n",
			i, pm/(1<<30), cl.MemoryBudget()/(1<<30))
	}
	if m.OOM(cl.MemoryBudget()) {
		fmt.Println("WARNING: plan exceeds the memory budget")
	}

	if *planOut != "" {
		data, err := json.MarshalIndent(res.Plan, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}
}

// runBatch tunes every workload in a JSON spec file through the async
// job queue (priorities respected, duplicate specs deduplicated onto one
// search), optionally backed by a durable plan store so a re-run serves
// finished plans from disk and warm-starts the rest.
func runBatch(file, storeDir string, workers int) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("-batch %q is neither a global batch size nor a readable spec file: %w", file, err)
	}
	var specs []serve.JobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("parsing %s (want a JSON array of job specs): %w", file, err)
	}
	if len(specs) == 0 {
		return fmt.Errorf("%s: no job specs", file)
	}

	// Batch mode submits every spec up front before waiting, so the job
	// queue must hold the whole file — size the admission bound to it
	// instead of inheriting the serving default.
	opts := []serve.Option{
		serve.WithJobWorkers(workers),
		serve.WithLimits(serve.Limits{MaxQueue: len(specs) + 1}),
	}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		fmt.Printf("plan store: %d plans loaded from %s\n", st.Len(), storeDir)
		opts = append(opts, serve.WithStore(st))
	}
	srv := serve.New(opts...)
	defer srv.Close()

	type submitted struct {
		spec serve.JobSpec
		st   serve.JobStatus
	}
	subs := make([]submitted, 0, len(specs))
	for i, spec := range specs {
		st, err := srv.SubmitJob(context.Background(), spec)
		if err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
		subs = append(subs, submitted{spec: spec, st: st})
	}
	fmt.Printf("submitted %d specs (%d distinct jobs) on %d workers\n\n",
		len(subs), countDistinct(subs, func(s submitted) string { return s.st.ID }), workers)

	failed := 0
	for _, sub := range subs {
		final, err := srv.WaitJob(context.Background(), sub.st.ID)
		if err != nil {
			return err
		}
		tag := fmt.Sprintf("%s %s x%d batch %d [%s]",
			sub.spec.Model, sub.spec.Platform, sub.spec.GPUs, sub.spec.Batch, sub.st.ID)
		switch {
		case final.State != "done":
			failed++
			fmt.Printf("%-48s %s: %s\n", tag, final.State, final.Error)
		case final.Result == nil:
			failed++
			fmt.Printf("%-48s done without a result\n", tag)
		default:
			r := final.Result
			src := "cold search"
			switch {
			case r.FromStore:
				src = "plan store"
			case r.Cached:
				src = "plan cache"
			case r.WarmStarted:
				src = fmt.Sprintf("warm start (%d pruned, %d pairs aborted)", r.WarmPruned, r.WarmAbortedPairs)
			}
			fmt.Printf("%-48s %8.2f samples/s  %8.0fms  %s\n",
				tag, r.PredThroughput, r.ElapsedMS, src)
		}
	}
	st := srv.Stats()
	fmt.Printf("\nsearches run: %d  plan-cache hits: %d  store hits: %d  warm-start rate: %.0f%%  job dedups: %d\n",
		st.TunesRun, st.PlanCacheHits, st.StoreHits, 100*st.WarmStartHitRate, st.JobsDeduped)
	if failed > 0 {
		return fmt.Errorf("%d of %d workloads failed", failed, len(subs))
	}
	return nil
}

func countDistinct[T any](xs []T, key func(T) string) int {
	seen := map[string]bool{}
	for _, x := range xs {
		seen[key(x)] = true
	}
	return len(seen)
}
