// Command misttune runs the Mist auto-tuner on one workload and prints
// the chosen plan, the analyzer's prediction, and the execution engine's
// measurement.
//
// Example:
//
//	misttune -model gpt3-2.7b -platform l4 -gpus 4 -batch 32
//	misttune -model llama-7b -platform a100 -gpus 8 -batch 128 -space deepspeed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	mist "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misttune: ")
	var (
		modelName = flag.String("model", "gpt3-2.7b", "model name (see -list-models)")
		platform  = flag.String("platform", "l4", "l4 or a100")
		gpus      = flag.Int("gpus", 4, "total GPU count (2, 4, 8 or a multiple of 8)")
		batch     = flag.Int("batch", 32, "global batch size")
		seq       = flag.Int("seq", 0, "sequence length (default: 2048 on l4, 4096 on a100)")
		flash     = flag.Bool("flash", true, "enable FlashAttention")
		spaceName = flag.String("space", "mist", "search space: mist|megatron|deepspeed|aceso|3d|uniform")
		planOut   = flag.String("plan-out", "", "write the tuned plan as JSON to this file")
		list      = flag.Bool("list-models", false, "list model catalog and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range mist.Models() {
			fmt.Println(n)
		}
		return
	}

	cfg, err := mist.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	var cl *mist.Cluster
	switch strings.ToLower(*platform) {
	case "l4":
		cl = mist.L4Cluster(*gpus)
		if *seq == 0 {
			*seq = 2048
		}
	case "a100":
		cl = mist.A100Cluster(*gpus)
		if *seq == 0 {
			*seq = 4096
		}
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	var space mist.Space
	switch strings.ToLower(*spaceName) {
	case "mist":
		space = mist.MistSpace()
	case "megatron":
		space = mist.MegatronSpace()
	case "deepspeed":
		space = mist.DeepSpeedSpace()
	case "aceso":
		space = mist.AcesoSpace()
	case "3d":
		space = mist.ThreeDSpace()
	case "uniform":
		space = mist.UniformSpace()
	default:
		log.Fatalf("unknown space %q", *spaceName)
	}

	w := mist.Workload{Model: cfg, Seq: *seq, Flash: *flash, GlobalBatch: *batch}
	fmt.Printf("tuning %s on %d x %s (seq=%d, batch=%d, flash=%v, space=%s)\n",
		cfg.Name, *gpus, cl.GPU.Name, *seq, *batch, *flash, space.Name)

	res, err := mist.TuneWithSpace(w, cl, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest plan:\n%s\n", res.Plan)
	fmt.Printf("\npredicted iteration time: %.3fs (%.2f samples/s)\n", res.Predicted, res.PredThroughput)
	fmt.Printf("tuning: %d candidates over %d (S,G) pairs in %s (eval cache: %.1f%% hits, %d unique points)\n",
		res.Candidates, res.SGPairs, res.Elapsed.Round(1e6),
		100*res.CacheHitRate(), res.EvalCacheMisses)

	m, err := mist.Simulate(w, cl, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured iteration time: %.3fs (%.2f samples/s), bubble %.1f%%\n",
		m.IterTime, m.Throughput, 100*m.Bubble)
	for i, pm := range m.PeakMem {
		fmt.Printf("  stage %d peak memory: %.2f GB (budget %.2f GB)\n",
			i, pm/(1<<30), cl.MemoryBudget()/(1<<30))
	}
	if m.OOM(cl.MemoryBudget()) {
		fmt.Println("WARNING: plan exceeds the memory budget")
	}

	if *planOut != "" {
		data, err := json.MarshalIndent(res.Plan, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}
}
