// Command mistbench regenerates the paper's evaluation tables and
// figures on the reproduction's simulation substrate.
//
//	mistbench -exp fig2            # one experiment, fast subset
//	mistbench -exp fig11 -full     # paper-scale grid (slow)
//	mistbench -exp all             # everything, fast subsets
//
// See EXPERIMENTS.md for the recorded paper-vs-reproduction comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mistbench: ")
	var (
		exp  = flag.String("exp", "all", "experiment name or 'all': "+strings.Join(experiments.Names(), ", "))
		full = flag.Bool("full", false, "paper-scale grids (slow) instead of fast subsets")
	)
	flag.Parse()

	scale := experiments.Small
	if *full {
		scale = experiments.Full
	}
	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		start := time.Now()
		tb, err := experiments.Run(strings.TrimSpace(name), scale)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(tb)
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
