package mist

import (
	"encoding/json"
	"math"
	"testing"
)

func TestFacadeTuneAndSimulate(t *testing.T) {
	w := Workload{Model: Model("gpt3-1.3b"), Seq: 2048, Flash: true, GlobalBatch: 8}
	cl := L4Cluster(2)
	res, err := Tune(w, cl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Simulate(w, cl, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Fatalf("bad measurement %+v", m)
	}
	if m.OOM(cl.MemoryBudget()) {
		t.Error("tuned plan OOMs")
	}
	pred, err := Predict(w, cl, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pred-m.IterTime) / m.IterTime; rel > 0.25 {
		t.Errorf("prediction error %.0f%%", 100*rel)
	}
}

func TestFacadeModelCatalog(t *testing.T) {
	if len(Models()) < 10 {
		t.Errorf("catalog too small: %v", Models())
	}
	if _, err := ModelByName("nonexistent"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestFacadeClusters(t *testing.T) {
	l4 := L4Cluster(8)
	a100 := A100Cluster(16)
	if l4.TotalGPUs() != 8 || a100.TotalGPUs() != 16 {
		t.Error("cluster sizes wrong")
	}
	if l4.HasNVLink() || !a100.HasNVLink() {
		t.Error("NVLink detection wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid GPU count should panic")
		}
	}()
	L4Cluster(12)
}

func TestPlanJSONRoundTrip(t *testing.T) {
	w := Workload{Model: Model("gpt3-1.3b"), Seq: 2048, Flash: true, GlobalBatch: 8}
	cl := L4Cluster(2)
	res, err := TuneWithSpace(w, cl, DeepSpeedSpace())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(w); err != nil {
		t.Fatalf("round-tripped plan invalid: %v", err)
	}
	m1, err := Simulate(w, cl, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Simulate(w, cl, &back)
	if err != nil {
		t.Fatal(err)
	}
	if m1.IterTime != m2.IterTime {
		t.Error("round-tripped plan simulates differently")
	}
}

func TestCompareFacade(t *testing.T) {
	w := Workload{Model: Model("gpt3-1.3b"), Seq: 2048, Flash: true, GlobalBatch: 8}
	cl := L4Cluster(2)
	out, err := Compare(w, cl, []System{SystemMist(), SystemMegatron()})
	if err != nil {
		t.Fatal(err)
	}
	if out["mist"] == nil || out["megatron-lm"] == nil {
		t.Fatalf("missing outcomes: %v", out)
	}
	if !out["mist"].OOM && !out["megatron-lm"].OOM &&
		out["mist"].Throughput < out["megatron-lm"].Throughput-1e-9 {
		t.Error("mist below megatron on its superset space")
	}
}
